package check

import (
	"errors"
	"sort"
	"sync"
	"testing"

	"weakorder/internal/drf"
	"weakorder/internal/hb"
	"weakorder/internal/ideal"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/program"
	"weakorder/internal/scmatch"
)

// enumOutcomes collects the distinct SC result keys of p under cfg;
// budget=true marks a blown MaxPaths budget (outcome set incomplete).
func enumOutcomes(t *testing.T, p *program.Program, cfg ideal.EnumConfig) (out map[string]bool, stats ideal.EnumStats, budget bool) {
	t.Helper()
	out = make(map[string]bool)
	stats, err := ideal.Enumerate(p, cfg, func(it *ideal.Interp) error {
		out[mem.ResultOf(it.Execution()).Key()] = true
		return nil
	})
	if errors.Is(err, ideal.ErrBudget) {
		return out, stats, true
	}
	if err != nil {
		t.Fatalf("%s: enumerate: %v", p.Name, err)
	}
	return out, stats, false
}

// matchVerdict runs the result-directed search; budget-exceeded is its
// own verdict value (the oracle treats it as conservatively SC).
func matchVerdict(t *testing.T, p *program.Program, r mem.Result, noReduce bool) (ok, budget bool) {
	t.Helper()
	m, err := scmatch.Matches(p, r, scmatch.Config{
		Interp:    ideal.Config{MaxMemOpsPerThread: oracleMemOpsPerThread},
		MaxStates: oracleMatchMaxStates,
		NoReduce:  noReduce,
	})
	if errors.Is(err, scmatch.ErrBudget) {
		return false, true
	}
	if err != nil {
		t.Fatalf("%s: scmatch: %v", p.Name, err)
	}
	return m.OK, false
}

// corrupt returns a copy of r with one read observation perturbed, so
// the Matches differential also covers the not-SC path.
func corrupt(r mem.Result) mem.Result {
	out := mem.Result{
		Reads: make(map[mem.OpID]mem.ReadObservation, len(r.Reads)),
		Final: r.Final,
	}
	ids := make([]mem.OpID, 0, len(r.Reads))
	for id, obs := range r.Reads {
		out.Reads[id] = obs
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return out
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	obs := out.Reads[ids[0]]
	obs.Value += 1000
	out.Reads[ids[0]] = obs
	return out
}

// TestOracleEquivalenceNaiveVsReduced is the differential safety net
// for the partial-order reduction: across the full generator catalog
// (race-free and racy), the reduced oracle must produce the identical
// SC outcome set, the identical truncation status, the identical DRF
// classification, and the identical scmatch.Matches verdict as naive
// enumeration — while exploring at least 5x fewer steps on aggregate.
func TestOracleEquivalenceNaiveVsReduced(t *testing.T) {
	specs := generators()
	perSpec := 52 // 4 specs x 52 = 208 programs
	if testing.Short() {
		perSpec = 6
	}
	var (
		mu                               sync.Mutex
		progs, enumSkipped, matchSkipped int
		naiveSteps, reducedSteps         int
	)
	// The group subtest blocks until every parallel spec finishes, so
	// the aggregate assertions below see the full corpus.
	t.Run("specs", func(t *testing.T) {
		for si, spec := range specs {
			si, spec := si, spec
			t.Run(spec.name, func(t *testing.T) {
				t.Parallel()
				for s := 0; s < perSpec; s++ {
					p := spec.make(deriveSeed(0xd1ff, uint64(si), uint64(s)))

					// Outcome sets. The naive reference runs under a tighter
					// path budget than production (it is the costly side of
					// this differential); programs exceeding it still count
					// toward the corpus, but only budget monotonicity is
					// checked for them.
					naiveCfg := oracleEnumConfig()
					naiveCfg.Reduce = false
					naiveCfg.MaxPaths = 60_000
					nOut, nStats, nBudget := enumOutcomes(t, p, naiveCfg)
					rOut, rStats, rBudget := enumOutcomes(t, p, oracleEnumConfig())
					mu.Lock()
					progs++
					naiveSteps += nStats.Steps
					reducedSteps += rStats.Steps
					if nBudget {
						enumSkipped++
					}
					mu.Unlock()
					if nBudget {
						// No complete naive reference; the reduction must not be
						// worse off than it.
						if rBudget && rStats.Steps > nStats.Steps {
							t.Errorf("%s/%d: reduced blew the budget later than naive should allow", spec.name, s)
						}
					} else {
						if rBudget {
							t.Errorf("%s/%d: reduced enumeration blew a budget naive met", spec.name, s)
							continue
						}
						for k := range nOut {
							if !rOut[k] {
								t.Errorf("%s/%d: naive outcome %q missing under reduction", spec.name, s, k)
							}
						}
						for k := range rOut {
							if !nOut[k] {
								t.Errorf("%s/%d: reduced outcome %q not in naive set", spec.name, s, k)
							}
						}
						if (nStats.Truncated == 0) != (rStats.Truncated == 0) {
							t.Errorf("%s/%d: truncation parity lost: naive %d, reduced %d",
								spec.name, s, nStats.Truncated, rStats.Truncated)
						}
					}

					// DRF classification.
					naiveDRF := boundedDRFConfig()
					naiveDRF.Enum.Reduce = false
					naiveDRF.Enum.MaxPaths = 30_000
					nv, nErr := drf.Check(p, hb.SyncAll, naiveDRF)
					rv, rErr := drf.Check(p, hb.SyncAll, boundedDRFConfig())
					if nErr == nil && rErr == nil && nv.DRF != rv.DRF {
						t.Errorf("%s/%d: DRF verdict diverged: naive %v, reduced %v",
							spec.name, s, nv.DRF, rv.DRF)
					}

					// Matches verdicts against observed hardware results — one
					// well-behaved config, one weakly ordered one, and a corrupted
					// result that no SC execution can produce.
					for _, mc := range []machine.Config{
						{Policy: policy.SC, Topology: machine.TopoBus, Caches: true, MaxCycles: campaignMaxCycles},
						{Policy: policy.Unconstrained, Topology: machine.TopoNetwork, MaxCycles: campaignMaxCycles},
					} {
						res, err := machine.Run(p, mc, deriveSeed(0x5eed, uint64(si), uint64(s)))
						if err != nil {
							t.Fatalf("%s/%d: machine %s: %v", spec.name, s, mc.Name(), err)
						}
						for _, r := range []mem.Result{res.Result, corrupt(res.Result)} {
							nOK, nB := matchVerdict(t, p, r, true)
							rOK, rB := matchVerdict(t, p, r, false)
							if nB {
								mu.Lock()
								matchSkipped++
								mu.Unlock()
								continue // no naive reference verdict
							}
							if rB {
								t.Errorf("%s/%d: reduced match blew a budget naive met (%s)",
									spec.name, s, mc.Name())
								continue
							}
							if nOK != rOK {
								t.Errorf("%s/%d: Matches verdict diverged on %s: naive %v, reduced %v",
									spec.name, s, mc.Name(), nOK, rOK)
							}
						}
					}
				}
			})
		}
	})
	t.Logf("%d programs: naive %d enum steps, reduced %d (%.1fx); %d enum comparisons skipped (naive over budget), %d match comparisons skipped",
		progs, naiveSteps, reducedSteps, float64(naiveSteps)/float64(reducedSteps), enumSkipped, matchSkipped)
	if !testing.Short() && progs < 200 {
		t.Errorf("differential corpus too small: %d programs (want >= 200)", progs)
	}
	if reducedSteps*5 > naiveSteps {
		t.Errorf("paths explored dropped less than 5x on the generator mix: naive %d, reduced %d",
			naiveSteps, reducedSteps)
	}
}
