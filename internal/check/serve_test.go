package check

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"weakorder/internal/machine"
	"weakorder/internal/policy"
	"weakorder/internal/program"
)

// slowFault is a harmless FaultHook that sleeps briefly per simulation
// without touching the result: it stretches a small campaign's wall
// clock so a concurrent scraper reliably observes it mid-flight, while
// leaving the Summary exactly what it would be without the hook.
func slowFault(d time.Duration) FaultHook {
	return func(cfg machine.Config, p *program.Program, res *machine.RunResult) {
		time.Sleep(d)
	}
}

// scrapeAll polls every control-plane endpoint until the campaign ends,
// recording which ones answered 200 at least once.
func scrapeAll(t *testing.T, addr string, stop <-chan struct{}) map[string]bool {
	t.Helper()
	paths := []string{"/healthz", "/metrics", "/progress", "/violations", "/summary", "/debug/pprof/goroutine?debug=1"}
	seen := make(map[string]bool)
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		for _, p := range paths {
			resp, err := client.Get("http://" + addr + p)
			if err != nil {
				continue // campaign may have just finished; server gone
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == 200 {
				seen[p] = true
			}
		}
		select {
		case <-stop:
			return seen
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestServeDoesNotPerturbCampaign is the control plane's core contract:
// a campaign scraped continuously over HTTP produces a Summary
// byte-identical to the same campaign run without -listen. Both runs
// carry the same do-nothing sleep hook so the scraped run is slow enough
// to be observed mid-flight without changing any outcome.
func TestServeDoesNotPerturbCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("two full campaigns; skipped in -short")
	}
	cfg := smallCampaign(31)
	cfg.Fault = slowFault(2 * time.Millisecond)

	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	addrCh := make(chan string, 1)
	cfg.Listen = "127.0.0.1:0"
	cfg.OnListen = func(addr string) { addrCh <- addr }
	stop := make(chan struct{})
	var seen map[string]bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		seen = scrapeAll(t, <-addrCh, stop)
	}()
	served, err := Run(cfg)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	for _, p := range []string{"/healthz", "/metrics", "/progress", "/violations", "/summary"} {
		if !seen[p] {
			t.Errorf("scraper never got a 200 from %s during the campaign", p)
		}
	}

	j1, err := base.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := served.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("serving the control plane perturbed the summary:\n--- without listen\n%s\n--- with listen\n%s", j1, j2)
	}
}

// TestServeConcurrentScrape runs a campaign with violations, a journal,
// and several concurrent scrapers including an SSE violation tail — the
// -race exercise for every publisher/server path at once.
func TestServeConcurrentScrape(t *testing.T) {
	cfg := smallCampaign(32)
	cfg.Fault = CorruptReadFault(policy.WODef2)
	cfg.Journal = t.TempDir() + "/journal"
	addrCh := make(chan string, 2) // one receive per consumer goroutine
	cfg.Listen = "127.0.0.1:0"
	cfg.OnListen = func(addr string) { addrCh <- addr; addrCh <- addr }

	stop := make(chan struct{})
	tailed := make(chan int, 1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		scrapeAll(t, <-addrCh, stop)
	}()
	go func() {
		defer wg.Done()
		n := 0
		defer func() { tailed <- n }()
		resp, err := http.Get("http://" + <-addrCh + "/violations/stream")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		go func() { <-stop; resp.Body.Close() }()
		r := bufio.NewReader(resp.Body)
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			if strings.HasPrefix(line, "data: ") {
				n++
			}
		}
	}()

	s, err := Run(cfg)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Violations) == 0 {
		t.Fatal("fault hook produced no violations; the tail test is vacuous")
	}
	if n := <-tailed; n == 0 {
		t.Error("SSE tail saw no violation frames during a violating campaign")
	}
}

// TestProgressJSONLines pins the structured progress-line satellite:
// every line is one JSON object that decodes into Progress with the
// core fields populated and consistent.
func TestProgressJSONLines(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallCampaign(33)
	cfg.Workers = 1 // serialize writes to the plain buffer
	cfg.Fault = slowFault(time.Millisecond)
	cfg.ProgressJSON = &buf
	cfg.ProgressEvery = time.Nanosecond // a line per completed program
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if buf.Len() == 0 || len(lines) == 0 {
		t.Fatal("no progress lines emitted")
	}
	// One line per completed program except the last (the campaign-done
	// line is the final summary's job).
	if want := cfg.Programs - 1; len(lines) != want {
		t.Fatalf("got %d progress lines, want %d", len(lines), want)
	}
	var last Progress
	for i, line := range lines {
		var p Progress
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("line %d is not a JSON progress object: %v\n%s", i+1, err, line)
		}
		if p.Seed != cfg.Seed || p.Programs != cfg.Programs || p.Configs != s.Configs {
			t.Fatalf("line %d carries wrong campaign identity: %+v", i+1, p)
		}
		if p.DonePrograms != int64(i+1) {
			t.Fatalf("line %d: donePrograms = %d, want %d", i+1, p.DonePrograms, i+1)
		}
		if len(p.PerConfig) != s.Configs {
			t.Fatalf("line %d: %d per-config rows, want %d", i+1, len(p.PerConfig), s.Configs)
		}
		last = p
	}
	if last.Sims <= 0 || last.ElapsedSec <= 0 || last.ProgramsPerSec <= 0 {
		t.Errorf("final line lacks rates: %+v", last)
	}
	if got := last.Oracle.SatDecided + last.Oracle.L1Hits + last.Oracle.EnumHits + last.Oracle.Fallbacks; got <= 0 {
		t.Errorf("final line reports no oracle activity: %+v", last.Oracle)
	}
}

// TestPublisherPartialSummaryMatchesFinal: once every program is
// published, the Publisher's partial summary must be byte-identical to
// the campaign's final Summary — the /summary endpoint converges to the
// stdout summary.
func TestPublisherPartialSummaryMatchesFinal(t *testing.T) {
	cfg := smallCampaign(34)
	cfg.Fault = CorruptReadFault(policy.SC)
	addrCh := make(chan string, 1)
	cfg.Listen = "127.0.0.1:0"
	cfg.OnListen = func(addr string) { addrCh <- addr }

	// Capture the final /summary body just before the server stops: run
	// the campaign, then compare against a fresh publisher fed the same
	// outcomes. Simpler and race-free: rebuild the publisher directly.
	s, err := Run(cfg)
	<-addrCh
	if err != nil {
		t.Fatal(err)
	}

	c := &campaign{cfg: cfg.withDefaults(), matrix: Matrix(cfg.withDefaults().Policies, cfg.withDefaults().Topologies)}
	pub := newPublisher(c.cfg, c.matrix, time.Now())
	// Re-run deterministically to regenerate the outcomes and feed them.
	c.oracle = newOracle()
	c.pub = pub
	outs, err := c.runPool()
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != cfg.Programs {
		t.Fatalf("re-run produced %d outcomes", len(outs))
	}
	got, err := pub.SummaryJSON()
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("publisher summary diverges from campaign summary:\n--- publisher\n%s\n--- campaign\n%s", got, want)
	}
	// The violation feed matches the summary's violations.
	lines, _, _ := pub.Violations(0)
	if len(lines) != len(s.Violations) {
		t.Fatalf("feed has %d entries, summary %d violations", len(lines), len(s.Violations))
	}
	var rep ViolationReport
	if err := json.Unmarshal(lines[0], &rep); err != nil {
		t.Fatalf("feed line is not a ViolationReport: %v", err)
	}
	if rep.Kind == "" || rep.Litmus == "" {
		t.Errorf("feed entry missing fields: %+v", rep)
	}
}

// TestPublisherNilSafe: every hook must be callable on a nil Publisher —
// the disabled-campaign hot path.
func TestPublisherNilSafe(t *testing.T) {
	var p *Publisher
	p.noteSim(0)
	p.noteJournalAppend()
	p.noteProgram(0, progOutcome{}, false)
	p.noteViolation(ViolationReport{})
	if lines, next, _ := p.Violations(0); lines != nil || next != 0 {
		t.Error("nil publisher returned a feed")
	}
	if pr := p.Progress(); pr.Programs != 0 {
		t.Errorf("nil publisher progress: %+v", pr)
	}
}
