package check

import (
	"fmt"

	"weakorder/internal/metrics"
)

// Metrics renders the summary as a telemetry snapshot (see
// internal/metrics): campaign totals, per-class program counts,
// per-policy coverage, shrinker effort, and oracle cache behavior. The
// snapshot is derived purely from the deterministic Summary — Perf
// (wall-clock) numbers are deliberately excluded — so equal campaigns
// export byte-identical metrics for any worker count.
func (s *Summary) Metrics() *metrics.Snapshot {
	r := metrics.NewRegistry()
	r.SetCounter("campaign.programs", uint64(s.Programs))
	r.SetCounter("campaign.configs", uint64(s.Configs))
	r.SetCounter("campaign.sims", uint64(s.Sims))
	r.SetCounter("campaign.violations", uint64(len(s.Violations)))
	r.SetCounter("campaign.watchdog_deaths", uint64(s.WatchdogDeaths))
	for class, n := range s.ByClass {
		r.SetCounter("campaign.programs."+class, uint64(n))
	}

	shrinkSteps := 0
	byKind := make(map[string]int)
	for i := range s.Violations {
		shrinkSteps += len(s.Violations[i].ShrinkSteps)
		byKind[s.Violations[i].Kind]++
	}
	r.SetCounter("campaign.shrink_steps", uint64(shrinkSteps))
	for kind, n := range byKind {
		r.SetCounter("campaign.violations."+kind, uint64(n))
	}

	for _, row := range s.Coverage {
		pre := fmt.Sprintf("coverage.%s.%s.", row.Policy, row.Class)
		r.SetCounter(pre+"sims", uint64(row.Sims))
		r.SetCounter(pre+"non_sc", uint64(row.NonSC))
		r.SetCounter(pre+"distinct_non_sc", uint64(row.DistinctNonSC))
	}

	// Robustness counters: recovered worker panics and per-check deadline
	// skips, total and broken down by the stage that hit its budget. The
	// per-stage series carry the stage as a Prometheus label
	// (weakorder_check_skips_total{stage="oracle"}) instead of minting a
	// new metric name per stage.
	r.SetCounter("check.panic.recovered", uint64(s.WorkerPanics))
	r.SetCounter("check.deadline.skips", uint64(s.DeadlineSkips))
	byStage := make(map[string]int)
	for _, sk := range s.Skips {
		byStage[sk.Stage]++
	}
	for stage, n := range byStage {
		r.SetCounter(metrics.Labeled("check.skips_total", "stage", stage), uint64(n))
	}

	r.SetCounter("oracle.enumerations", uint64(s.Oracle.Enumerations))
	r.SetCounter("oracle.incomplete", uint64(s.Oracle.Incomplete))
	r.SetCounter("oracle.queries", uint64(s.Oracle.Queries))
	r.SetCounter("oracle.enum_hits", uint64(s.Oracle.EnumHits))
	r.SetCounter("oracle.fallbacks", uint64(s.Oracle.Fallbacks))
	r.SetCounter("oracle.fallback_memo_hits", uint64(s.Oracle.FallbackMemoHits))
	r.SetCounter("oracle.budget_exceeded", uint64(s.Oracle.BudgetExceeded))

	// Tier-0 saturation fast path: decisions made without enumeration,
	// and the reasons ambiguous results were handed to the fallback.
	r.SetCounter("check.satfast.decided", uint64(s.Oracle.SatDecided))
	r.SetCounter("check.satfast.accepted", uint64(s.Oracle.SatAccepted))
	r.SetCounter("check.satfast.rejected", uint64(s.Oracle.SatRejected))
	r.SetCounter("check.satfast.fallbacks", uint64(s.Oracle.SatFallbacks))
	for reason, n := range s.Oracle.SatFallbackReasons {
		r.SetCounter(metrics.Labeled("check.satfast.fallback_total", "reason", reason), uint64(n))
	}
	return r.Snapshot()
}
