package check

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"weakorder/internal/machine"
)

// corpusPins records, per committed corpus entry, the exact result key
// and cycle count of a replay under the entry's recorded configuration
// and machine seed. The kernel and scheduler rework must keep these
// byte-identical: any drift here means recorded reproducers no longer
// reproduce what they recorded.
var corpusPins = map[string]struct {
	key    string
	cycles uint64
}{
	"definition2-p0000-WO-Def2": {key: "P0.0[0]=0;|", cycles: 11},
	"definition2-p0001-WO-Def2": {key: "P0.0[0]=0;|", cycles: 11},
	"definition2-p0002-WO-Def2": {key: "P0.3[3]=0;P0.4[3]=0;P0.5[3]=0;P0.6[3]=0;P0.7[3]=0;P0.8[3]=0;P0.9[3]=0;P0.10[3]=0;P0.11[3]=0;P0.12[3]=0;P0.13[3]=0;P0.14[3]=0;P0.15[3]=0;P0.16[3]=0;P0.17[3]=0;P0.18[3]=0;P0.19[3]=0;P0.20[3]=0;P0.21[3]=0;P0.22[3]=0;P0.23[3]=0;P0.24[3]=0;P0.25[3]=0;P0.26[3]=0;P0.27[3]=0;P0.28[3]=0;P0.29[3]=0;P0.30[3]=0;P0.31[3]=0;P0.32[3]=0;P0.33[3]=0;P0.34[3]=0;P0.35[3]=0;P0.36[3]=1;P1.0[2]=0;P1.1[2]=0;P1.2[2]=0;P1.3[2]=0;P1.4[2]=0;P1.5[2]=0;P1.6[2]=0;P1.7[2]=0;P1.8[2]=0;P1.9[2]=0;P1.10[2]=1;P1.11[0]=38;P1.16[2]=1;P1.17[2]=1;P1.18[2]=1;P1.19[2]=1;P1.20[2]=1;P1.21[2]=1;P1.22[2]=1;P1.23[2]=1;P1.24[2]=1;P1.25[2]=1;P1.26[2]=1;P1.27[2]=1;P1.28[2]=1;P1.29[2]=1;P1.30[2]=1;P1.31[2]=1;P1.32[2]=2;P1.33[0]=143;|0=143;1=150;2=2;3=2;4=2;5=10;6=10;", cycles: 187},
}

// TestCorpusPinnedReplay replays every committed corpus entry under its
// recorded machine configuration and seed, twice — with the idle-cycle
// fast-forward on and off — and requires (a) the two runs to agree on
// every observable and (b) the run to match the pinned key and cycle
// count above. This is the regression gate for the kernel overhaul:
// reproducers stay byte-identical across it.
func TestCorpusPinnedReplay(t *testing.T) {
	entries, err := LoadCorpus(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(corpusPins) {
		t.Fatalf("corpus has %d entries but %d pins are recorded — update corpusPins", len(entries), len(corpusPins))
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			pin, ok := corpusPins[e.Name]
			if !ok {
				t.Fatalf("no pin recorded for corpus entry %s", e.Name)
			}
			mcfg, err := e.Report.Config.Machine()
			if err != nil {
				t.Fatal(err)
			}
			mcfg.MaxCycles = campaignMaxCycles
			slow := mcfg
			slow.DisableFastForward = true
			ff, err := machine.Run(e.Prog, mcfg, e.Report.MachineSeed)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := machine.Run(e.Prog, slow, e.Report.MachineSeed)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := fmt.Sprintf("%v", ff.Exec.Ops), fmt.Sprintf("%v", naive.Exec.Ops); got != want {
				t.Errorf("trace diverged between fast-forward and naive:\n ff    %s\n naive %s", got, want)
			}
			if !reflect.DeepEqual(ff.OpCycles, naive.OpCycles) {
				t.Error("commit cycles diverged between fast-forward and naive")
			}
			if !reflect.DeepEqual(ff.Stats, naive.Stats) {
				t.Errorf("stats diverged:\n ff    %+v\n naive %+v", ff.Stats, naive.Stats)
			}
			if got := ff.Result.Key(); got != pin.key {
				t.Errorf("result drifted from pinned replay:\n got  %q\n want %q", got, pin.key)
			}
			if got := ff.Stats.Cycles; got != pin.cycles {
				t.Errorf("cycle count drifted from pinned replay: got %d, want %d", got, pin.cycles)
			}
		})
	}
}

// TestCorpusReplayMetricsInvisible replays every corpus entry with the
// metrics registry and timeline enabled and requires the replay to stay
// byte-identical to the plain one: recorded reproducers must reproduce
// the same execution whether or not anyone is watching.
func TestCorpusReplayMetricsInvisible(t *testing.T) {
	entries, err := LoadCorpus(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			mcfg, err := e.Report.Config.Machine()
			if err != nil {
				t.Fatal(err)
			}
			mcfg.MaxCycles = campaignMaxCycles
			plain, err := machine.Run(e.Prog, mcfg, e.Report.MachineSeed)
			if err != nil {
				t.Fatal(err)
			}
			mcfg.Metrics = true
			mcfg.Timeline = true
			metered, err := machine.Run(e.Prog, mcfg, e.Report.MachineSeed)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := fmt.Sprintf("%v", metered.Exec.Ops), fmt.Sprintf("%v", plain.Exec.Ops); got != want {
				t.Errorf("trace diverged with metrics on:\n with    %s\n without %s", got, want)
			}
			if !reflect.DeepEqual(metered.OpCycles, plain.OpCycles) {
				t.Error("commit cycles diverged with metrics on")
			}
			if !reflect.DeepEqual(metered.Stats, plain.Stats) {
				t.Errorf("stats diverged with metrics on:\n with    %+v\n without %+v", metered.Stats, plain.Stats)
			}
			if got, want := metered.Result.Key(), plain.Result.Key(); got != want {
				t.Errorf("result diverged with metrics on: %q vs %q", got, want)
			}
			if metered.Metrics == nil || metered.Timeline == nil {
				t.Error("telemetry enabled but not returned")
			}
		})
	}
}

// TestCorpusPinnedSerialization re-marshals each loaded report and
// requires the bytes to match the committed .json file exactly, so a
// corpus written by one toolchain round-trips unchanged through another.
func TestCorpusPinnedSerialization(t *testing.T) {
	dir := filepath.Join("testdata", "corpus")
	entries, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := json.MarshalIndent(e.Report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		b = append(b, '\n')
		want, err := os.ReadFile(filepath.Join(dir, e.Name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(want) {
			t.Errorf("%s: report does not round-trip byte-identically", e.Name)
		}
	}
}
