package check

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"weakorder/internal/cache"
	"weakorder/internal/exp"
	"weakorder/internal/faults"
	"weakorder/internal/machine"
	"weakorder/internal/policy"
)

// Violation kinds.
const (
	// KindSCPolicy: a run under the SC policy did not appear sequentially
	// consistent — the SC enforcement itself is broken.
	KindSCPolicy = "sc-policy"
	// KindDefinition2: a DRF0 program on a weakly ordered policy did not
	// appear sequentially consistent — the Definition 2 contract is
	// broken (a bug in the policy, the caches, or the interconnect).
	KindDefinition2 = "definition2"
	// KindLiveness: a run hit the cycle watchdog — the protocol wedged
	// (deadlock or livelock), typically because recovery failed under an
	// injected fault plan. The report carries the structured
	// LivenessReport rendering.
	KindLiveness = "liveness"
	// KindWorkerPanic: a campaign worker panicked while checking this
	// (program, config, seed) — a bug in the simulator, an oracle, or a
	// test hook. The panic is recovered, the report carries the panic
	// value and stack, the remaining seeds of the offending (program,
	// config) pair are quarantined, and the campaign continues.
	KindWorkerPanic = "worker-panic"
)

// ConfigDesc is the JSON-stable description of a machine configuration,
// sufficient to rebuild it for replay.
type ConfigDesc struct {
	Policy    string `json:"policy"`
	Topology  string `json:"topology"`
	Caches    bool   `json:"caches"`
	NetJitter int64  `json:"netJitter,omitempty"`
	// ExtraProcs and DirMode reproduce the big-machine campaign axes;
	// both are zero-valued (and omitted) for the classic matrix.
	ExtraProcs int    `json:"extraProcs,omitempty"`
	DirMode    string `json:"dirMode,omitempty"`
	// Faults records the fault plan active when the violation was found;
	// replay re-arms the identical plan.
	Faults *faults.Plan `json:"faults,omitempty"`
}

// describeConfig projects the fields replay needs out of a machine.Config.
func describeConfig(cfg machine.Config) ConfigDesc {
	d := ConfigDesc{
		Policy:     cfg.Policy.String(),
		Topology:   cfg.Topology.String(),
		Caches:     cfg.Caches,
		NetJitter:  int64(cfg.NetJitter),
		ExtraProcs: cfg.ExtraProcs,
		Faults:     cfg.Faults,
	}
	if cfg.DirMode != cache.DirFullMap {
		d.DirMode = cfg.DirMode.String()
	}
	return d
}

// Machine rebuilds the machine configuration the description names.
func (d ConfigDesc) Machine() (machine.Config, error) {
	pol, err := policy.Parse(d.Policy)
	if err != nil {
		return machine.Config{}, err
	}
	var topo machine.Topology
	switch d.Topology {
	case machine.TopoBus.String():
		topo = machine.TopoBus
	case machine.TopoNetwork.String():
		topo = machine.TopoNetwork
	case machine.TopoMesh.String():
		topo = machine.TopoMesh
	default:
		return machine.Config{}, fmt.Errorf("check: unknown topology %q", d.Topology)
	}
	dirMode, err := cache.ParseDirMode(d.DirMode)
	if err != nil {
		return machine.Config{}, err
	}
	return machine.Config{
		Policy:     pol,
		Topology:   topo,
		Caches:     d.Caches,
		NetJitter:  simTime(d.NetJitter),
		ExtraProcs: d.ExtraProcs,
		DirMode:    dirMode,
		Faults:     d.Faults,
	}, nil
}

// ViolationReport records one contract violation: where it was found,
// how to reproduce it, and the minimal program the shrinker reached.
type ViolationReport struct {
	// Kind classifies the broken oracle (KindSCPolicy or KindDefinition2).
	Kind string `json:"kind"`
	// Program is the (shrunk) program's name.
	Program string `json:"program"`
	// Generator and GenSeed name the generator call that produced the
	// original program.
	Generator string `json:"generator"`
	GenSeed   int64  `json:"genSeed"`
	// ProgramIndex is the campaign slot the program occupied.
	ProgramIndex int `json:"programIndex"`
	// Config is the machine configuration the violation occurred on.
	Config ConfigDesc `json:"config"`
	// MachineSeed seeds the machine's randomized latencies.
	MachineSeed int64 `json:"machineSeed"`
	// Outcome is the violating result's canonical key, observed on the
	// original (unshrunk) program.
	Outcome string `json:"outcome"`
	// Instructions counts the shrunk program's instructions.
	Instructions int `json:"instructions"`
	// ShrinkSteps logs each accepted reduction, in order.
	ShrinkSteps []string `json:"shrinkSteps"`
	// Litmus is the shrunk program's round-tripped litmus text.
	Litmus string `json:"litmus"`
	// Liveness is the rendered LivenessReport for KindLiveness violations
	// (which processors stalled, on which lines, fault counters).
	Liveness string `json:"liveness,omitempty"`
	// Stack is the recovered panic value plus goroutine stack for
	// KindWorkerPanic violations.
	Stack string `json:"stack,omitempty"`
	// Checksum fingerprints the entry (sha256 over the report with this
	// field blank); the corpus store verifies it on load. Empty on
	// entries written before checksumming existed.
	Checksum string `json:"checksum,omitempty"`
}

// SkipRecord logs one oracle decision abandoned on its per-check
// wall-clock deadline (CampaignConfig.CheckDeadline): the simulation ran,
// but its appears-SC classification (stage "oracle") or the program's
// DRF classification (stage "classify", recorded with a zero config and
// seed) exceeded the budget and was skipped instead of hanging a worker.
type SkipRecord struct {
	ProgramIndex int        `json:"programIndex"`
	Config       ConfigDesc `json:"config"`
	MachineSeed  int64      `json:"machineSeed"`
	// Stage names the abandoned computation: "oracle" or "classify".
	Stage string `json:"stage"`
	// Reason is currently always "deadline".
	Reason string `json:"reason"`
}

// CoverageRow aggregates one (policy, program class) cell of the
// campaign: how many simulations ran, how many produced results no
// idealized execution produces, and how many distinct such results were
// seen. Non-SC outcomes are expected (and interesting) for racy programs
// on weak policies; for DRF programs on weakly ordered policies they are
// violations and appear in Violations instead.
type CoverageRow struct {
	Policy        string `json:"policy"`
	Class         string `json:"class"`
	Sims          int    `json:"sims"`
	NonSC         int    `json:"nonSC"`
	DistinctNonSC int    `json:"distinctNonSC"`
}

// OracleStats counts the SC-oracle cache's work. All fields are
// deterministic for a fixed campaign configuration.
type OracleStats struct {
	// Queries is the number of appears-SC decisions requested (including
	// those absorbed by program-local L1 memos).
	Queries int `json:"queries"`
	// L1Hits counts queries answered by a program-local memo without
	// touching the shared (striped) cache.
	L1Hits int `json:"l1Hits"`
	// Enumerations is the number of full outcome enumerations performed
	// (once per distinct program).
	Enumerations int `json:"enumerations"`
	// Incomplete counts enumerations that exceeded their budget and
	// produced only a partial outcome set.
	Incomplete int `json:"incomplete"`
	// EnumHits counts queries answered from an enumerated outcome set.
	EnumHits int `json:"enumHits"`
	// Fallbacks counts queries that ran a result-directed search because
	// the outcome set was incomplete and did not contain the result.
	Fallbacks int `json:"fallbacks"`
	// FallbackMemoHits counts fallback queries answered from the
	// per-program result memo without a new search.
	FallbackMemoHits int `json:"fallbackMemoHits"`
	// BudgetExceeded counts fallback searches that exceeded MaxStates;
	// such results are conservatively treated as appearing SC.
	BudgetExceeded int `json:"budgetExceeded"`
	// SatDecided counts queries the tier-0 polynomial saturation fast
	// path (internal/sat) decided outright — no enumeration, no search.
	// It splits into SatAccepted (verified-witness acceptances) and
	// SatRejected (necessary-edge contradictions). All three are zero
	// when CampaignConfig.NoSatFast disables the stage.
	SatDecided  int `json:"satDecided,omitempty"`
	SatAccepted int `json:"satAccepted,omitempty"`
	SatRejected int `json:"satRejected,omitempty"`
	// SatFallbacks counts queries the fast path handed to enumeration,
	// broken down by reason in SatFallbackReasons (ambiguous-rf,
	// co-incomplete, too-large, ...).
	SatFallbacks       int            `json:"satFallbacks,omitempty"`
	SatFallbackReasons map[string]int `json:"satFallbackReasons,omitempty"`
}

// Summary is a campaign's deterministic outcome: for a fixed
// CampaignConfig it is byte-identical across runs, worker counts, and
// schedules. Wall-clock measurements live in Perf, which is excluded
// from the JSON encoding.
type Summary struct {
	Seed     int64 `json:"seed"`
	Programs int   `json:"programs"`
	// Configs is the size of the policy × topology × caches matrix.
	Configs int `json:"configs"`
	// Faults is the campaign's fault plan (nil when fault-free).
	Faults *faults.Plan `json:"faults,omitempty"`
	// Sims is the total number of machine simulations.
	Sims int `json:"sims"`
	// WatchdogDeaths counts runs that hit the cycle watchdog; each also
	// appears as a KindLiveness violation. Must be zero for a healthy
	// protocol under any valid fault plan.
	WatchdogDeaths int `json:"watchdogDeaths"`
	// WorkerPanics counts panics recovered inside campaign workers; each
	// also appears as a KindWorkerPanic violation. Must be zero for a
	// healthy checker.
	WorkerPanics int `json:"workerPanics,omitempty"`
	// DeadlineSkips counts oracle decisions abandoned on the per-check
	// deadline; Skips lists them. Always zero when
	// CampaignConfig.CheckDeadline is unset — deadline skips depend on
	// wall-clock speed, so campaigns that must be byte-reproducible
	// (resume parity, cross-host comparison) run without a deadline.
	DeadlineSkips int `json:"deadlineSkips,omitempty"`
	// Skips lists the skipped checks, sorted like Violations.
	Skips []SkipRecord `json:"skips,omitempty"`
	// ByClass counts programs per class ("drf", "racy").
	ByClass map[string]int `json:"byClass"`
	// Coverage has one row per (policy, class), sorted.
	Coverage []CoverageRow `json:"coverage"`
	// Violations lists every contract violation found, shrunk, sorted by
	// (program index, config name, machine seed). Empty (non-nil) when
	// the campaign is clean.
	Violations []ViolationReport `json:"violations"`
	// Oracle counts the SC-oracle cache's work.
	Oracle OracleStats `json:"oracle"`

	// Perf holds wall-clock throughput; excluded from JSON so summaries
	// compare byte-identical across runs.
	Perf *Perf `json:"-"`
}

// Perf reports campaign throughput.
type Perf struct {
	// Elapsed is the campaign wall time in seconds.
	Elapsed float64
	// ProgramsPerSec and SimsPerSec are throughput over Elapsed.
	ProgramsPerSec float64
	SimsPerSec     float64
	// OracleHitRate is the fraction of appears-SC queries answered
	// without a fresh enumeration or search (L1 memo, enumerated set,
	// fallback memo, or the saturation fast path).
	OracleHitRate float64
	// SatFastRate is the fraction of L1-missing queries the polynomial
	// saturation stage decided without enumeration.
	SatFastRate float64
}

// String renders the perf line for logs.
func (p *Perf) String() string {
	return fmt.Sprintf("elapsed %.2fs, %.1f programs/s, %.1f sims/s, oracle hit rate %.1f%%, satfast %.1f%%",
		p.Elapsed, p.ProgramsPerSec, p.SimsPerSec, 100*p.OracleHitRate, 100*p.SatFastRate)
}

// JSON encodes the summary deterministically (map keys sorted, Perf
// excluded), with a trailing newline.
func (s *Summary) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// CoverageTable renders the coverage rows in the repository's standard
// experiment-table format.
func (s *Summary) CoverageTable() *exp.Table {
	t := &exp.Table{
		ID:      "Campaign",
		Title:   fmt.Sprintf("Differential campaign coverage (seed %d, %d programs, %d configs)", s.Seed, s.Programs, s.Configs),
		Headers: []string{"policy", "class", "sims", "non-SC", "distinct non-SC"},
		Notes: []string{
			"non-SC counts results no idealized execution produces",
			"DRF rows on SC/WO policies must show 0 (Definition 2); racy rows may not",
		},
	}
	for _, r := range s.Coverage {
		t.AddRow(r.Policy, r.Class, r.Sims, r.NonSC, r.DistinctNonSC)
	}
	return t
}

// sortSummary puts the aggregate slices in canonical order.
func sortSummary(s *Summary) {
	sort.Slice(s.Coverage, func(i, j int) bool {
		a, b := s.Coverage[i], s.Coverage[j]
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		return a.Class < b.Class
	})
	sort.Slice(s.Violations, func(i, j int) bool {
		a, b := s.Violations[i], s.Violations[j]
		if a.ProgramIndex != b.ProgramIndex {
			return a.ProgramIndex < b.ProgramIndex
		}
		if c := strings.Compare(configKey(a.Config), configKey(b.Config)); c != 0 {
			return c < 0
		}
		return a.MachineSeed < b.MachineSeed
	})
	sort.Slice(s.Skips, func(i, j int) bool {
		a, b := s.Skips[i], s.Skips[j]
		if a.ProgramIndex != b.ProgramIndex {
			return a.ProgramIndex < b.ProgramIndex
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if c := strings.Compare(configKey(a.Config), configKey(b.Config)); c != 0 {
			return c < 0
		}
		return a.MachineSeed < b.MachineSeed
	})
}

func configKey(d ConfigDesc) string {
	k := fmt.Sprintf("%s/%s/caches=%t/jitter=%d", d.Policy, d.Topology, d.Caches, d.NetJitter)
	if d.Faults != nil && d.Faults.Enabled() {
		k += "/faults=" + d.Faults.String()
	}
	return k
}
