package check

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"weakorder/internal/faults"
)

// journaledCampaign is the shared configuration for resume tests: small
// but adversarial — severe interconnect faults make the outcomes
// (violations, watchdogs, retries) worth journaling.
func journaledCampaign(seed int64, journal string, resume bool, workers int) CampaignConfig {
	cfg := smallCampaign(seed)
	sev := faults.Severe()
	cfg.Faults = &sev
	cfg.Journal = journal
	cfg.Resume = resume
	cfg.Workers = workers
	return cfg
}

func summaryJSON(t *testing.T, cfg CampaignConfig) string {
	t.Helper()
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// truncateJournal rewrites path to its header plus the first keep
// records, then appends tail verbatim (torn garbage in the tests).
func truncateJournal(t *testing.T, path string, keep int, tail string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	if len(lines) < keep+1 {
		t.Fatalf("journal has %d lines, cannot keep header+%d records", len(lines), keep)
	}
	var out []byte
	for _, l := range lines[:keep+1] { // header + keep records
		out = append(out, l...)
	}
	out = append(out, tail...)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestJournalResumeParity is the kill-and-resume property test: a
// campaign interrupted after K journaled programs and resumed — even
// under a different worker count, even with a torn record at the kill
// point — produces a Summary byte-identical to an uninterrupted run's.
func TestJournalResumeParity(t *testing.T) {
	if testing.Short() {
		t.Skip("several full campaigns; skipped in -short")
	}
	const seed = 11
	want := summaryJSON(t, journaledCampaign(seed, "", false, 2))

	for _, tc := range []struct {
		name          string
		keep          int
		tail          string
		resumeWorkers int
	}{
		{"kill-after-2-resume-1-worker", 2, "", 1},
		{"kill-after-5-resume-4-workers", 5, "", 4},
		{"torn-tail-record", 3, `{"idx":7,"sum":1,"out":{"class":"drf"`, 2},
		{"garbage-tail", 1, "\x00\x7fnot json at all\n", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			journal := filepath.Join(t.TempDir(), "campaign.journal")
			// Full run to materialize a complete journal...
			full := summaryJSON(t, journaledCampaign(seed, journal, false, 2))
			if full != want {
				t.Fatalf("journaled run diverged from unjournaled run:\n--- unjournaled\n%s\n--- journaled\n%s", want, full)
			}
			// ...then simulate the kill: keep only the first records, plus
			// optionally a torn tail the resume scan must drop.
			truncateJournal(t, journal, tc.keep, tc.tail)
			got := summaryJSON(t, journaledCampaign(seed, journal, true, tc.resumeWorkers))
			if got != want {
				t.Fatalf("resumed summary diverged from uninterrupted run:\n--- uninterrupted\n%s\n--- resumed\n%s", want, got)
			}
		})
	}
}

// TestJournalResumeSkipsDoneWork asserts a resume actually skips the
// journaled programs rather than silently re-checking everything.
func TestJournalResumeSkipsDoneWork(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.journal")
	cfg := smallCampaign(12)
	cfg.Journal = journal
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	truncateJournal(t, journal, 5, "")

	cfg.Resume = true
	var resumed int
	cfg.Logf = func(format string, args ...interface{}) {
		var done, total, rest int
		if n, _ := fmt.Sscanf(fmt.Sprintf(format, args...),
			"resume: %d/%d programs already journaled, checking the remaining %d",
			&done, &total, &rest); n == 3 {
			resumed = done
		}
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if resumed != 5 {
		t.Fatalf("resume replayed %d journaled programs, want 5", resumed)
	}
}

// TestJournalIdentityMismatch: a journal must refuse to resume under a
// configuration that would produce different outcomes.
func TestJournalIdentityMismatch(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.journal")
	cfg := smallCampaign(13)
	cfg.Journal = journal
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []struct {
		name string
		f    func(*CampaignConfig)
	}{
		{"seed", func(c *CampaignConfig) { c.Seed++ }},
		{"programs", func(c *CampaignConfig) { c.Programs++ }},
		{"faults", func(c *CampaignConfig) { sev := faults.Severe(); c.Faults = &sev }},
		{"deadline", func(c *CampaignConfig) { c.CheckDeadline = 1 }},
	} {
		t.Run(mutate.name, func(t *testing.T) {
			bad := cfg
			bad.Resume = true
			mutate.f(&bad)
			if _, err := Run(bad); err == nil {
				t.Fatalf("resume with changed %s accepted; want identity mismatch", mutate.name)
			}
		})
	}
	// Same config must still resume fine (and worker count must not be
	// part of the identity).
	ok := cfg
	ok.Resume = true
	ok.Workers = 3
	if _, err := Run(ok); err != nil {
		t.Fatalf("resume with identical config failed: %v", err)
	}
}

// TestJournalNotAJournal: resuming from a file that is not a campaign
// journal must fail loudly, not truncate someone's data.
func TestJournalNotAJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(path, []byte("do not eat\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := smallCampaign(14)
	cfg.Journal = path
	cfg.Resume = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("resume from a non-journal file accepted")
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "do not eat\n" {
		t.Fatalf("non-journal file was modified: %q", b)
	}
}

// TestJournalResumeRequiresJournal pins the config validation.
func TestJournalResumeRequiresJournal(t *testing.T) {
	cfg := smallCampaign(15)
	cfg.Resume = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("Resume without Journal accepted")
	}
}

// TestJournalRecordsAreChecksummed flips one byte in the middle of a
// journaled record and asserts the resume scan drops it (and the tail)
// rather than trusting it.
func TestJournalRecordsAreChecksummed(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.journal")
	cfg := smallCampaign(16)
	cfg.Journal = journal
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the third record's payload (line index 3:
	// header, rec, rec, rec...).
	lines := bytes.SplitAfter(b, []byte("\n"))
	target := lines[3]
	pos := len(target) / 2
	if target[pos] == 'x' {
		target[pos] = 'y'
	} else {
		target[pos] = 'x'
	}
	if err := os.WriteFile(journal, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.Resume = true
	var resumed int
	cfg.Logf = func(format string, args ...interface{}) {
		var done, total, rest int
		if n, _ := fmt.Sscanf(fmt.Sprintf(format, args...),
			"resume: %d/%d programs already journaled, checking the remaining %d",
			&done, &total, &rest); n == 3 {
			resumed = done
		}
	}
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 2 {
		t.Fatalf("resume accepted %d records before the corrupt one, want 2", resumed)
	}
	if s.Programs != cfg.Programs {
		t.Fatalf("summary covers %d programs, want %d", s.Programs, cfg.Programs)
	}
	// The journal must have been healed: a second resume sees a fully
	// valid file again.
	cfg2 := cfg
	if _, err := Run(cfg2); err != nil {
		t.Fatalf("resume after heal failed: %v", err)
	}
	f, err := os.Open(journal)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	n := -1 // don't count the header
	for sc.Scan() {
		n++
	}
	if n != cfg.Programs {
		t.Fatalf("healed journal has %d records, want %d", n, cfg.Programs)
	}
}
