// Package check is the differential model-checking and fuzzing
// subsystem: it continuously adjudicates the paper's Definition 2
// contract at scale. A deterministic seeded campaign generates programs
// (race-free and racy, via internal/gen), runs each across a
// policy × topology × caches matrix on internal/machine, and classifies
// every (program, config, outcome) against the idealized-architecture
// oracles:
//
//   - runs under the SC policy must appear sequentially consistent;
//   - DRF0 programs must appear sequentially consistent on every weakly
//     ordered policy (Definition 2 — violations are simulator or policy
//     bugs);
//   - racy programs (and the Unconstrained policy) feed a coverage table
//     of observed non-SC outcomes per policy.
//
// On any violation an automatic shrinker (shrink.go) delta-debugs the
// program IR to a minimal reproducer, which is emitted as round-tripped
// litmus text plus a JSON report into a corpus directory (corpus.go);
// the committed corpus replays as a regression suite.
//
// The expensive appears-SC oracle is cached per program hash: the full
// SC outcome set is enumerated once per distinct program and shared
// across every config and machine seed, with a result-directed search as
// fallback when enumeration exceeds its budget.
package check

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"weakorder/internal/cache"
	"weakorder/internal/ctlplane"
	"weakorder/internal/drf"
	"weakorder/internal/faults"
	"weakorder/internal/gen"
	"weakorder/internal/ideal"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/program"
	"weakorder/internal/scmatch"
	"weakorder/internal/sim"
)

// Program classes.
const (
	// ClassDRF: the program obeys DRF0 (by construction or by bounded
	// exhaustive check) and is covered by the Definition 2 oracle.
	ClassDRF = "drf"
	// ClassRacy: the program races (or its DRF check exceeded budget);
	// its outcomes feed the coverage table only.
	ClassRacy = "racy"
)

// FaultHook mutates a simulation result after the machine runs — a
// test-only knob for deliberately breaking a policy so the violation
// pipeline (detection, shrinking, corpus emission) can be exercised and
// its acceptance criteria pinned. Production campaigns leave it nil.
type FaultHook func(cfg machine.Config, p *program.Program, res *machine.RunResult)

// CampaignConfig parameterizes a campaign. The zero value of every field
// has a usable default except Programs, which must be positive.
type CampaignConfig struct {
	// Seed derives every random stream in the campaign: generator seeds
	// and machine seeds are mixed from (Seed, program index, config
	// index, run index), never from worker identity, so the campaign's
	// Summary is identical for any Workers value.
	Seed int64
	// Programs is the number of generated programs.
	Programs int
	// Policies selects the policy axis (default policy.All()).
	Policies []policy.Kind
	// Topologies selects the interconnect axis (default bus + network;
	// machine.TopoMesh adds the 2D-mesh interconnect).
	Topologies []machine.Topology
	// Procs is a floor on total processors per simulated machine: every
	// program is padded with idle processors up to this size (0 = just
	// the program's threads). The big-machine campaigns run the same
	// programs at 16/64/256 procs this way.
	Procs int
	// DirMode selects the directory sharer representation for every
	// cached matrix row (default full-map; limited-pointer and
	// coarse-vector must produce identical outcomes — campaigns under
	// those modes are differential tests of the scalable directories).
	DirMode cache.DirMode
	// SeedsPerConfig is the number of machine seeds each (program,
	// config) pair runs under (default 2).
	SeedsPerConfig int
	// Workers bounds the worker pool (default runtime.GOMAXPROCS(0)).
	Workers int
	// CorpusDir, when non-empty, receives a .litmus + .json reproducer
	// pair for every violation.
	CorpusDir string
	// MaxShrinkTries bounds the shrinker's candidate evaluations per
	// violation (default 400).
	MaxShrinkTries int
	// Fault is the test-only fault hook; see FaultHook.
	Fault FaultHook
	// Journal, when non-empty, is the path of the campaign's append-only
	// progress journal: every completed program's outcome is written as a
	// checksummed record, fsynced, before the campaign moves on. A killed
	// campaign restarted with the same configuration plus Resume replays
	// the journaled outcomes and re-checks only the remainder, producing
	// a Summary byte-identical to an uninterrupted run (deadlines off).
	Journal string
	// Resume replays an existing journal (see Journal) instead of
	// truncating it. The journal's recorded campaign identity — seed,
	// program count, config matrix, fault plan, deadline, and checker
	// code generation — must match this configuration exactly.
	Resume bool
	// CheckDeadline, when positive, bounds the wall-clock time of each
	// oracle decision (outcome-set enumeration, result-directed search,
	// DRF classification). An over-budget check is cooperatively
	// canceled and recorded as a SkipRecord in the Summary instead of
	// hanging its worker. Zero disables deadlines, which is required for
	// byte-reproducible summaries (a skip depends on host speed).
	CheckDeadline time.Duration
	// NoSatFast disables the tier-0 polynomial appears-SC fast path
	// (internal/sat) and answers every oracle query by enumeration or
	// result-directed search alone — the escape hatch for differential
	// debugging of the fast path itself (`wofuzz -satfast=off`). Verdicts
	// are identical either way within the search budgets (the fast path
	// accepts only via a verified witness and rejects only on a
	// contradiction); only the oracle accounting differs.
	NoSatFast bool
	// Faults, when non-nil and enabled, arms the deterministic
	// interconnect fault injector on every cached matrix row (the
	// no-cache rows have no retry protocol and run fault-free). The
	// hardened protocol must absorb the faults: DRF0 programs still
	// appear SC, and a watchdog death becomes a KindLiveness violation
	// with a shrunk reproducer instead of aborting the campaign.
	Faults *faults.Plan
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...interface{})
	// Progress, when positive, emits a campaign progress line via Logf
	// every Progress completed programs: programs done, sims, violations,
	// and programs/sec so far. Progress lines are side output only — the
	// Summary stays byte-deterministic regardless of Progress, Workers,
	// or scheduling.
	Progress int
	// ProgressJSON, when non-nil, receives structured progress lines: one
	// JSON object per line, the same payload the control plane's
	// /progress endpoint serves, emitted at most once per ProgressEvery.
	// Like Logf progress lines, this is side output only.
	ProgressJSON io.Writer
	// ProgressEvery is the minimum interval between timed progress lines
	// (default 1s when ProgressJSON is set). When positive with
	// ProgressJSON nil, human-readable progress lines go to Logf at the
	// same cadence instead.
	ProgressEvery time.Duration
	// Listen, when non-empty, serves the campaign control plane
	// (internal/ctlplane) on the given TCP address for the duration of
	// the campaign: /healthz, /metrics, /progress (+SSE stream),
	// /violations (+SSE tail), /summary, and /debug/pprof. The server
	// observes the campaign through atomic counters and an append-only
	// feed; the Summary stays byte-identical with or without it. Use
	// ":0" to bind an ephemeral port and OnListen to learn it.
	Listen string
	// OnListen, when non-nil, receives the control plane's bound address
	// once it is serving.
	OnListen func(addr string)
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if len(c.Policies) == 0 {
		c.Policies = policy.All()
	}
	if len(c.Topologies) == 0 {
		c.Topologies = []machine.Topology{machine.TopoBus, machine.TopoNetwork}
	}
	if c.SeedsPerConfig == 0 {
		c.SeedsPerConfig = 2
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxShrinkTries == 0 {
		c.MaxShrinkTries = 400
	}
	return c
}

// Search budgets. The oracle enumerates small generated programs
// completely well inside these; spin-loop programs truncate and fall
// back to the result-directed search.
const (
	oracleMemOpsPerThread = 16
	oracleEnumMaxPaths    = 200_000
	oracleMatchMaxStates  = 300_000
	drfCheckMaxPaths      = 100_000
	campaignMaxCycles     = 500_000
	shrinkMaxCycles       = 200_000
	// Liveness shrinking uses a tighter watchdog: a wedged candidate burns
	// its whole cycle budget, so the shrinker's per-candidate cost is the
	// budget itself.
	livenessShrinkMaxCycles = 50_000
)

// oracleEnumConfig bounds the SC outcome-set enumeration. Partial-order
// reduction is on: the oracle consumes only mem.Result keys, which are
// invariant across interleavings that commute non-conflicting
// operations, so one representative per Mazurkiewicz trace yields the
// identical outcome set (TestOracleEquivalenceNaiveVsReduced asserts
// this differentially) while MaxPaths truncates far less often.
func oracleEnumConfig() ideal.EnumConfig {
	return ideal.EnumConfig{
		Interp:        ideal.Config{MaxMemOpsPerThread: oracleMemOpsPerThread},
		SkipTruncated: true,
		MaxPaths:      oracleEnumMaxPaths,
		Reduce:        true,
	}
}

// boundedDRFConfig bounds the DRF classification. Reduction needs
// PreserveSyncOrder here: the hb builders order same-address
// synchronization pairs by completion order even when both only read,
// so those pairs must not commute.
func boundedDRFConfig() drf.CheckConfig {
	return drf.CheckConfig{Enum: ideal.EnumConfig{
		Interp:            ideal.Config{MaxMemOpsPerThread: oracleMemOpsPerThread},
		SkipTruncated:     true,
		MaxPaths:          drfCheckMaxPaths,
		Reduce:            true,
		PreserveSyncOrder: true,
	}}
}

// genSpec is one entry of the generator catalog. Shapes are kept small
// enough that the oracle usually enumerates the full SC outcome set.
type genSpec struct {
	name  string
	class string // ClassDRF for by-construction generators, "" to decide by checking
	make  func(seed int64) *program.Program
}

func generators() []genSpec {
	return []genSpec{
		{"racefree", ClassDRF, func(s int64) *program.Program {
			return gen.RaceFree(gen.RaceFreeConfig{
				Procs: 2, Locks: 1, SharedPerLock: 2, PrivatePerProc: 1,
				Sections: 1, OpsPerSection: 2, PrivateOps: 1,
			}, s)
		}},
		{"racefree-ttas", ClassDRF, func(s int64) *program.Program {
			return gen.RaceFree(gen.RaceFreeConfig{
				Procs: 2, Locks: 1, SharedPerLock: 1, PrivatePerProc: 1,
				Sections: 1, OpsPerSection: 1, PrivateOps: 1, TTAS: true,
			}, s)
		}},
		{"handoff", ClassDRF, func(s int64) *program.Program {
			return gen.Handoff(gen.HandoffConfig{Stages: 2, Items: 2, Work: 1}, s)
		}},
		{"racy", "", func(s int64) *program.Program {
			return gen.Racy(gen.RacyConfig{Procs: 2, Vars: 3, OpsPerProc: 5, SyncFraction: 4}, s)
		}},
	}
}

// Matrix expands the policy and topology axes into concrete machine
// configurations: weakly ordered policies require caches, SC and
// Unconstrained run both with and without them. The network rows get
// high jitter, which is what surfaces weak behavior (message
// reordering) in practice.
func Matrix(policies []policy.Kind, topos []machine.Topology) []machine.Config {
	var out []machine.Config
	for _, topo := range topos {
		for _, pol := range policies {
			cacheModes := []bool{true}
			if pol == policy.SC || pol == policy.Unconstrained {
				cacheModes = []bool{false, true}
			}
			for _, caches := range cacheModes {
				cfg := machine.Config{
					Policy:    pol,
					Topology:  topo,
					Caches:    caches,
					MaxCycles: campaignMaxCycles,
				}
				if topo == machine.TopoNetwork {
					cfg.NetJitter = 20
				}
				out = append(out, cfg)
			}
		}
	}
	return out
}

// mix64 is splitmix64's finalizer: a cheap, well-distributed hash used
// to derive independent deterministic seed streams from (Seed, indices).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func deriveSeed(campaign int64, parts ...uint64) int64 {
	x := mix64(uint64(campaign))
	for _, p := range parts {
		x = mix64(x ^ p)
	}
	return int64(x >> 1) // non-negative
}

func simTime(v int64) sim.Time { return sim.Time(v) }

// oracleEntry caches the SC oracle for one distinct *canonical* program:
// the enumerated outcome-key set (complete or budget-truncated) in
// canonical coordinates, plus a memo of result-directed searches for
// keys outside an incomplete set, plus the memoized DRF classification.
// Programs that are isomorphic up to thread permutation and address
// renaming share one entry (see canon.go).
//
// The entry keeps no statistics: oracle accounting lives in the
// per-program progOutcome records (simRecord's L1/Enum/Budget flags) and
// is aggregated into OracleStats by summarize. Attributing every event
// to a program — never to shared entry state — is what lets a resumed
// campaign (journal.go) rebuild the exact statistics of an uninterrupted
// one from a mix of journaled and freshly computed outcomes.
type oracleEntry struct {
	once     sync.Once
	outcomes map[string]bool
	complete bool

	classOnce    sync.Once
	class        string
	classSkipped bool // DRF classification abandoned on deadline

	mu   sync.Mutex
	memo map[string]fallbackVerdict // canonical result key -> fallback search result
}

// fallbackVerdict memoizes one result-directed search: the appears-SC
// verdict and whether it was the conservative budget-exceeded answer.
// The budget flag rides along so every isomorphic program reports the
// identical queryInfo for a key regardless of which instance ran the
// search — the schedule-independence the summarize aggregation needs.
type fallbackVerdict struct {
	ok, budget bool
}

// queryInfo classifies how one appears-SC query was answered, for the
// per-program oracle accounting.
type queryInfo struct {
	// enum: answered from the enumerated outcome set (a member, or a
	// non-member of a complete set).
	enum bool
	// budget: the fallback search exceeded MaxStates and the result was
	// conservatively treated as appearing SC.
	budget bool
	// sat: decided by the polynomial saturation fast path, before any
	// enumeration or search touched the entry.
	sat bool
	// satFallback, when non-empty, is the fast path's fallback reason for
	// a query that then went to enumeration/search.
	satFallback string
}

// satMaxEvents bounds the saturation fast path's event graph. Campaign
// results stay far below this; anything larger (deep spin loops) is
// exactly the regime where the result-directed search's observation
// pruning shines anyway.
const satMaxEvents = 2048

// errDeadline marks an oracle decision abandoned on its per-check
// wall-clock deadline; the caller records a SkipRecord instead of a
// verdict.
var errDeadline = errors.New("check: per-check deadline exceeded")

// oracle is the campaign-wide appears-SC cache, keyed by canonical
// program hash and striped to keep entry lookup off the workers' shared
// critical path — with one global mutex every simulation result
// serialized on the same lock.
type oracle struct {
	stripes [oracleStripes]oracleStripe
}

type oracleStripe struct {
	mu      sync.Mutex
	entries map[string]*oracleEntry
}

// oracleStripes is the shard count (power of two; comfortably above any
// realistic worker count so stripe collisions are rare).
const oracleStripes = 64

func newOracle() *oracle {
	o := &oracle{}
	for i := range o.stripes {
		o.stripes[i].entries = make(map[string]*oracleEntry)
	}
	return o
}

func (o *oracle) entry(hash string) *oracleEntry {
	// hash is hex, so single characters carry 4 bits; mix two.
	s := &o.stripes[(hash[0]*31+hash[1])&(oracleStripes-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[hash]
	if !ok {
		e = &oracleEntry{memo: make(map[string]fallbackVerdict)}
		s.entries[hash] = e
	}
	return e
}

func (e *oracleEntry) enumerate(p *program.Program, cn canon, cancel func() bool) {
	e.once.Do(func() {
		e.outcomes = make(map[string]bool)
		cfg := oracleEnumConfig()
		cfg.Cancel = cancel
		stats, err := ideal.Enumerate(p, cfg, func(it *ideal.Interp) error {
			e.outcomes[cn.key(mem.ResultOf(it.Execution()))] = true
			return nil
		})
		// The set decides non-membership only when enumeration visited
		// every execution: no budget/deadline error AND no truncated path
		// (spin loops exceed the per-thread op budget and are silently
		// skipped, so a "successful" truncated enumeration is still
		// partial). Membership proves appears-SC either way; absence from
		// a partial set falls back to the result-directed search.
		e.complete = err == nil && stats.Truncated == 0
	})
}

// appearsSC is the per-entry oracle decision for one observed result:
// the first call enumerates the program's SC outcome set once (whichever
// isomorphic program instance gets there first — the set is stored in
// canonical coordinates, so all instances agree); later calls are set
// lookups, with a memoized result-directed search when the set is
// incomplete. key must be cn.key(res). cancel, when non-nil, is the
// per-check deadline hook; an abandoned decision returns errDeadline and
// is never memoized (a later query gets a fresh budget).
func (e *oracleEntry) appearsSC(p *program.Program, cn canon, key string, res mem.Result, cancel func() bool) (bool, queryInfo, error) {
	e.enumerate(p, cn, cancel)
	e.mu.Lock()
	if e.outcomes[key] {
		e.mu.Unlock()
		return true, queryInfo{enum: true}, nil
	}
	if e.complete {
		e.mu.Unlock()
		return false, queryInfo{enum: true}, nil
	}
	if v, seen := e.memo[key]; seen {
		e.mu.Unlock()
		return v.ok, queryInfo{budget: v.budget}, nil
	}
	e.mu.Unlock()

	// The directed search runs with an unbounded interpreter: the observed
	// result may contain more dynamic memory operations per thread (spin
	// retries) than any enumeration budget, and pruning against the
	// observation keeps the search tractable regardless.
	m, err := scmatch.Matches(p, res, scmatch.Config{MaxStates: oracleMatchMaxStates, Cancel: cancel})
	e.mu.Lock()
	defer e.mu.Unlock()
	if err != nil {
		if errors.Is(err, scmatch.ErrCanceled) {
			return false, queryInfo{}, errDeadline
		}
		if errors.Is(err, scmatch.ErrBudget) {
			// Cannot disprove SC appearance within budget: conservatively
			// treat as appearing SC (no false violations).
			e.memo[key] = fallbackVerdict{ok: true, budget: true}
			return true, queryInfo{budget: true}, nil
		}
		return false, queryInfo{}, err
	}
	if v, seen := e.memo[key]; seen {
		// A concurrent query searched the same key first; report its
		// verdict so isomorphic programs agree byte-for-byte.
		return v.ok, queryInfo{budget: v.budget}, nil
	}
	e.memo[key] = fallbackVerdict{ok: m.OK}
	return m.OK, queryInfo{}, nil
}

// Run executes a campaign and returns its deterministic summary.
func Run(cfg CampaignConfig) (*Summary, error) {
	cfg = cfg.withDefaults()
	if cfg.Programs <= 0 {
		return nil, fmt.Errorf("check: CampaignConfig.Programs must be positive")
	}
	matrix := Matrix(cfg.Policies, cfg.Topologies)
	if len(matrix) == 0 {
		return nil, fmt.Errorf("check: empty config matrix")
	}
	if cfg.Procs < 0 {
		return nil, fmt.Errorf("check: CampaignConfig.Procs must be non-negative")
	}
	for i := range matrix {
		if matrix[i].Caches {
			matrix[i].DirMode = cfg.DirMode
		}
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
		for i := range matrix {
			if matrix[i].Caches {
				matrix[i].Faults = cfg.Faults
			}
		}
	}
	c := &campaign{cfg: cfg, matrix: matrix, oracle: newOracle()}

	if cfg.CorpusDir != "" {
		// Recovery pass before any writes: a crash mid-write in an
		// earlier (pre-hardening) run may have left torn entries that
		// would poison replay; quarantine them instead of failing later.
		if _, quarantined, err := RecoverCorpus(cfg.CorpusDir); err != nil {
			return nil, fmt.Errorf("check: corpus recovery: %w", err)
		} else if len(quarantined) > 0 && cfg.Logf != nil {
			for _, q := range quarantined {
				cfg.Logf("corpus: quarantined %s: %s", q.Name, q.Reason)
			}
		}
	}

	if cfg.Journal != "" {
		j, done, err := openJournal(cfg.Journal, c.identity(), cfg.Resume)
		if err != nil {
			return nil, err
		}
		defer j.Close()
		c.journal = j
		c.done = done
		if cfg.Logf != nil && len(done) > 0 {
			cfg.Logf("resume: %d/%d programs already journaled, checking the remaining %d",
				len(done), cfg.Programs, cfg.Programs-len(done))
		}
	} else if cfg.Resume {
		return nil, fmt.Errorf("check: Resume requires Journal")
	}

	start := time.Now()
	c.start = start
	if cfg.Listen != "" || cfg.ProgressJSON != nil || cfg.ProgressEvery > 0 {
		c.pub = newPublisher(cfg, matrix, start)
		if c.journal != nil {
			c.journal.onAppend = c.pub.noteJournalAppend
		}
	}
	if cfg.Listen != "" {
		srv, serr := ctlplane.Serve(cfg.Listen, c.pub, ctlplane.Options{})
		if serr != nil {
			return nil, serr
		}
		defer srv.Close()
		if cfg.OnListen != nil {
			cfg.OnListen(srv.Addr())
		}
	}
	outs, err := c.runPool()
	if err != nil {
		return nil, err
	}
	s := summarize(cfg, len(matrix), outs)

	elapsed := time.Since(start).Seconds()
	hit := 0.0
	if s.Oracle.Queries > 0 {
		hit = float64(s.Oracle.EnumHits+s.Oracle.FallbackMemoHits+s.Oracle.L1Hits+s.Oracle.SatDecided) / float64(s.Oracle.Queries)
	}
	satRate := 0.0
	if miss := s.Oracle.Queries - s.Oracle.L1Hits; miss > 0 {
		satRate = float64(s.Oracle.SatDecided) / float64(miss)
	}
	s.Perf = &Perf{
		Elapsed:        elapsed,
		ProgramsPerSec: float64(s.Programs) / elapsed,
		SimsPerSec:     float64(s.Sims) / elapsed,
		OracleHitRate:  hit,
		SatFastRate:    satRate,
	}
	if cfg.Logf != nil {
		cfg.Logf("campaign done: %d programs, %d sims, %d violations (%s)",
			s.Programs, s.Sims, len(s.Violations), s.Perf)
	}
	return s, nil
}

// summarize folds the per-program outcomes into the campaign Summary.
// It is a pure function of the outcome slice — every statistic,
// including the oracle cache's, is attributed to a program rather than
// observed on shared state — so a resumed campaign that mixes journaled
// and freshly computed outcomes produces a Summary byte-identical to an
// uninterrupted run's.
func summarize(cfg CampaignConfig, configs int, outs []progOutcome) *Summary {
	s := &Summary{
		Seed:       cfg.Seed,
		Programs:   cfg.Programs,
		Configs:    configs,
		Faults:     cfg.Faults,
		ByClass:    make(map[string]int),
		Violations: []ViolationReport{},
	}
	covSims := make(map[CoverageRow]int)
	covNonSC := make(map[CoverageRow]int)
	covKeys := make(map[CoverageRow]map[string]bool)
	// Entry-level oracle events (one enumeration, one fallback search per
	// distinct result key) are counted once per canonical hash, in
	// program order — the same totals the shared cache produces live,
	// reconstructed deterministically.
	type entryAgg struct {
		enumerated, incomplete bool
		searched               map[string]bool
	}
	entries := make(map[string]*entryAgg)
	for _, out := range outs {
		s.ByClass[out.Class]++
		s.Sims += len(out.Sims)
		s.WatchdogDeaths += out.Watchdogs
		s.WorkerPanics += out.Panics
		s.Violations = append(s.Violations, out.Violations...)
		s.Skips = append(s.Skips, out.Skips...)

		ea := entries[out.CanonHash]
		if ea == nil {
			ea = &entryAgg{searched: make(map[string]bool)}
			entries[out.CanonHash] = ea
		}
		if out.Enumerated {
			ea.enumerated = true
			if !out.EnumComplete {
				ea.incomplete = true
			}
		}
		for _, rec := range out.Sims {
			cell := CoverageRow{Policy: rec.Policy, Class: out.Class}
			covSims[cell]++
			if rec.Skipped != "" {
				continue
			}
			if !rec.AppearsSC {
				covNonSC[cell]++
				if covKeys[cell] == nil {
					covKeys[cell] = make(map[string]bool)
				}
				covKeys[cell][rec.Key] = true
			}
			s.Oracle.Queries++
			if !rec.L1 && rec.SatFallback != "" {
				s.Oracle.SatFallbacks++
				if s.Oracle.SatFallbackReasons == nil {
					s.Oracle.SatFallbackReasons = make(map[string]int)
				}
				s.Oracle.SatFallbackReasons[rec.SatFallback]++
			}
			switch {
			case rec.L1:
				s.Oracle.L1Hits++
			case rec.Sat:
				s.Oracle.SatDecided++
				if rec.AppearsSC {
					s.Oracle.SatAccepted++
				} else {
					s.Oracle.SatRejected++
				}
			case rec.Enum:
				s.Oracle.EnumHits++
			case ea.searched[rec.CanonKey]:
				s.Oracle.FallbackMemoHits++
			default:
				ea.searched[rec.CanonKey] = true
				s.Oracle.Fallbacks++
				if rec.Budget {
					s.Oracle.BudgetExceeded++
				}
			}
		}
	}
	for _, ea := range entries {
		if ea.enumerated {
			s.Oracle.Enumerations++
			if ea.incomplete {
				s.Oracle.Incomplete++
			}
		}
	}
	s.DeadlineSkips = len(s.Skips)
	for cell, sims := range covSims {
		s.Coverage = append(s.Coverage, CoverageRow{
			Policy:        cell.Policy,
			Class:         cell.Class,
			Sims:          sims,
			NonSC:         covNonSC[cell],
			DistinctNonSC: len(covKeys[cell]),
		})
	}
	sortSummary(s)
	return s
}
