package check

import (
	"errors"
	"fmt"
	"sort"

	"weakorder/internal/axiom"
	"weakorder/internal/drf"
	"weakorder/internal/hb"
	"weakorder/internal/ideal"
	"weakorder/internal/litmus"
	"weakorder/internal/metrics"
	"weakorder/internal/program"
	"weakorder/internal/scmatch"
)

// Axiomatic-vs-operational differential defaults. The per-thread budget
// is deliberately smaller than oracleMemOpsPerThread: the axiomatic side
// enumerates rf and co combinatorially, so its cost grows much faster
// with event count than the interleaving oracle's.
const (
	axiomDiffMemOps    = 6
	axiomDiffMaxSteps  = 1 << 21
	axiomDiffEnumPaths = 200_000
)

// AxiomDiffConfig bounds one axiomatic-vs-operational comparison. Both
// sides run under the same per-thread memory-op budget with truncated
// runs discarded, so their outcome universes coincide exactly.
type AxiomDiffConfig struct {
	// MemOpsPerThread is the shared per-thread memory-op budget
	// (default 6).
	MemOpsPerThread int
	// MaxSteps caps the axiomatic search (default 1<<21).
	MaxSteps int
	// MaxPaths caps the operational enumerations (default 200k).
	MaxPaths int
	// Metrics, when set, receives axiom.diff.* counters in addition to
	// the engine's own axiom.* counters.
	Metrics *metrics.Registry
}

func (c *AxiomDiffConfig) memOps() int {
	if c.MemOpsPerThread > 0 {
		return c.MemOpsPerThread
	}
	return axiomDiffMemOps
}

func (c *AxiomDiffConfig) maxSteps() int {
	if c.MaxSteps > 0 {
		return c.MaxSteps
	}
	return axiomDiffMaxSteps
}

func (c *AxiomDiffConfig) maxPaths() int {
	if c.MaxPaths > 0 {
		return c.MaxPaths
	}
	return axiomDiffEnumPaths
}

// AxiomDiffResult reports one comparison. When Skipped is set, one side
// exhausted a budget and no verdict was reached for that program.
type AxiomDiffResult struct {
	Program    string
	Skipped    bool
	SkipReason string

	// SC differential: axiomatic-SC outcome set vs scmatch.Outcomes.
	SCAgree   bool
	AxiomOnly []string // outcome keys only the axiomatic side produced
	OperOnly  []string // outcome keys only the operational side produced

	// DRF differential: the drf0 model's race flag vs drf.Check.
	AxiomRacy bool
	OperRacy  bool
	DRFAgree  bool

	// Stats is the SC-side axiomatic search telemetry.
	Stats axiom.Stats
}

// Agree reports full agreement on both differentials.
func (r *AxiomDiffResult) Agree() bool { return !r.Skipped && r.SCAgree && r.DRFAgree }

// String renders a one-line verdict for CLI use.
func (r *AxiomDiffResult) String() string {
	switch {
	case r.Skipped:
		return fmt.Sprintf("%s: skipped (%s)", r.Program, r.SkipReason)
	case r.Agree():
		return fmt.Sprintf("%s: agree (sc outcomes and race verdict; racy=%v, %d candidates)",
			r.Program, r.AxiomRacy, r.Stats.Candidates)
	default:
		return fmt.Sprintf("%s: DISAGREE (axiom-only=%v oper-only=%v axiomRacy=%v operRacy=%v)",
			r.Program, r.AxiomOnly, r.OperOnly, r.AxiomRacy, r.OperRacy)
	}
}

// AxiomDiff cross-checks the declarative axiomatic engine against the
// operational oracles on one program: the axiomatic-SC outcome set must
// equal scmatch.Outcomes (exhaustive idealized interleaving), and the
// drf0 model's race flag must match drf.Check's classification. This is
// the standing differential between the paper's two readings of a memory
// model — consistency predicate over candidate executions versus
// interleaving machine — so a divergence is a bug in one of the two
// engines, never a legitimate model difference.
func AxiomDiff(p *program.Program, cfg AxiomDiffConfig) (AxiomDiffResult, error) {
	res := AxiomDiffResult{Program: p.Name}
	budget := cfg.memOps()
	axCfg := axiom.Config{
		MaxMemOpsPerThread: budget,
		MaxSteps:           cfg.maxSteps(),
		Metrics:            cfg.Metrics,
	}
	enumCfg := ideal.EnumConfig{
		Interp:        ideal.Config{MaxMemOpsPerThread: budget},
		SkipTruncated: true,
		MaxPaths:      cfg.maxPaths(),
		Reduce:        true,
	}

	skip := func(reason string) (AxiomDiffResult, error) {
		res.Skipped = true
		res.SkipReason = reason
		countDiff(cfg.Metrics, &res)
		return res, nil
	}

	// SC outcome sets.
	axOuts, st, err := axiom.Outcomes(p, axiom.MustLoad("sc"), axCfg)
	if err != nil {
		return res, fmt.Errorf("axiomatic sc: %w", err)
	}
	res.Stats = st
	if !st.Complete {
		return skip("axiomatic SC search incomplete")
	}
	opOuts, err := scmatch.Outcomes(p, enumCfg)
	if errors.Is(err, ideal.ErrBudget) {
		return skip("operational enumeration over budget")
	}
	if err != nil {
		return res, fmt.Errorf("operational sc: %w", err)
	}
	for k := range axOuts {
		if _, ok := opOuts[k]; !ok {
			res.AxiomOnly = append(res.AxiomOnly, k)
		}
	}
	for k := range opOuts {
		if _, ok := axOuts[k]; !ok {
			res.OperOnly = append(res.OperOnly, k)
		}
	}
	sort.Strings(res.AxiomOnly)
	sort.Strings(res.OperOnly)
	res.SCAgree = len(res.AxiomOnly) == 0 && len(res.OperOnly) == 0

	// DRF0 race classification.
	v, err := axiom.Check(p, axiom.MustLoad("drf0"), axiom.Config{
		MaxMemOpsPerThread: budget,
		MaxSteps:           cfg.maxSteps(),
		StopWhenFlagged:    true,
		Metrics:            cfg.Metrics,
	})
	if err != nil {
		return res, fmt.Errorf("axiomatic drf0: %w", err)
	}
	if !v.Stats.Complete {
		return skip("axiomatic DRF0 search incomplete")
	}
	drfCfg := enumCfg
	drfCfg.PreserveSyncOrder = true
	opv, err := drf.Check(p, hb.SyncAll, drf.CheckConfig{Enum: drfCfg})
	if errors.Is(err, ideal.ErrBudget) {
		return skip("operational DRF check over budget")
	}
	if err != nil {
		return res, fmt.Errorf("operational drf: %w", err)
	}
	res.AxiomRacy = v.Flags["race"] > 0
	res.OperRacy = !opv.DRF
	res.DRFAgree = res.AxiomRacy == res.OperRacy

	countDiff(cfg.Metrics, &res)
	return res, nil
}

// litmusDiffBudget picks the shared per-thread memory-op budget per
// litmus program: small enough to keep spin loops enumerable on the
// axiomatic side, large enough to cover the longest straight-line
// thread.
func litmusDiffBudget(name string) int {
	switch name {
	case "mp", "mp-racy-spin":
		return 6
	case "critsec-2p-1r":
		// One lock acquisition is 4 ops (TAS, load, store, unlock);
		// budget 7 admits up to 3 failed TAS retries while keeping the
		// candidate space enumerable under the default step cap.
		return 7
	default:
		return 8
	}
}

// AxiomCampaignConfig parameterizes an axiomatic-vs-operational
// differential sweep (see AxiomCampaign).
type AxiomCampaignConfig struct {
	// Seed derives the generator seed streams.
	Seed int64
	// PerSpec is the number of generated programs per generator spec
	// (default 25; the catalog has 4 specs).
	PerSpec int
	// Metrics, when set, receives the axiom.* engine counters and the
	// axiom.diff.* verdict counters.
	Metrics *metrics.Registry
	// Logf, when set, receives one progress line per program.
	Logf func(format string, args ...interface{})
}

// AxiomCampaignSummary aggregates a differential sweep.
type AxiomCampaignSummary struct {
	Programs      int // total comparisons attempted
	Compared      int // comparisons that reached a verdict on both sides
	Skipped       int // comparisons abandoned on a budget
	Disagreements []AxiomDiffResult
}

// AxiomCampaign runs the standing axiomatic-vs-operational differential
// over the full litmus suite (with per-program matched budgets) and a
// deterministic generator mix: for every program, the axiomatic-SC
// outcome set must equal exhaustive idealized interleaving and the drf0
// race flag must match drf.Check. Any disagreement is an engine bug.
func AxiomCampaign(cfg AxiomCampaignConfig) (*AxiomCampaignSummary, error) {
	perSpec := cfg.PerSpec
	if perSpec <= 0 {
		perSpec = 25
	}
	sum := &AxiomCampaignSummary{}
	record := func(res AxiomDiffResult) {
		sum.Programs++
		if res.Skipped {
			sum.Skipped++
		} else {
			sum.Compared++
			if !res.Agree() {
				sum.Disagreements = append(sum.Disagreements, res)
			}
		}
		if cfg.Logf != nil {
			cfg.Logf("%s", res.String())
		}
	}
	for _, p := range litmus.All() {
		res, err := AxiomDiff(p, AxiomDiffConfig{
			MemOpsPerThread: litmusDiffBudget(p.Name),
			Metrics:         cfg.Metrics,
		})
		if err != nil {
			return nil, fmt.Errorf("litmus %s: %w", p.Name, err)
		}
		record(res)
	}
	for si, spec := range generators() {
		for s := 0; s < perSpec; s++ {
			p := spec.make(deriveSeed(cfg.Seed, uint64(si), uint64(s)))
			res, err := AxiomDiff(p, AxiomDiffConfig{Metrics: cfg.Metrics})
			if err != nil {
				return nil, fmt.Errorf("%s/%d: %w", spec.name, s, err)
			}
			record(res)
		}
	}
	return sum, nil
}

func countDiff(reg *metrics.Registry, r *AxiomDiffResult) {
	if reg == nil {
		return
	}
	switch {
	case r.Skipped:
		reg.Counter("axiom.diff.skipped").Inc()
	case r.Agree():
		reg.Counter("axiom.diff.agree").Inc()
	default:
		reg.Counter("axiom.diff.disagree").Inc()
	}
}
