package check

import (
	"errors"
	"sync"
	"testing"

	"weakorder/internal/ideal"
	"weakorder/internal/litmus"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/program"
	"weakorder/internal/sat"
	"weakorder/internal/scmatch"
)

// satDecideCampaign runs the fast path exactly as checkOne does.
func satDecideCampaign(p *program.Program, r mem.Result) sat.Decision {
	return sat.Decide(p, r, sat.Config{MaxEvents: satMaxEvents})
}

// satAgree cross-checks one decided fast-path verdict against the
// result-directed search in its production configuration — unbounded
// interpreter, production state budget — the exact oracle the fast path
// preempts in checkOne. Budget-blown searches yield no reference verdict
// and are skipped: within its budget the search is exact, so every
// comparable pair must agree.
func satAgree(t *testing.T, name string, p *program.Program, r mem.Result) {
	t.Helper()
	d := satDecideCampaign(p, r)
	if d.Verdict == sat.Fallback {
		return
	}
	m, err := scmatch.Matches(p, r, scmatch.Config{MaxStates: oracleMatchMaxStates})
	if errors.Is(err, scmatch.ErrBudget) {
		return
	}
	if err != nil {
		t.Fatalf("%s: scmatch: %v", name, err)
	}
	if (d.Verdict == sat.Accepted) != m.OK {
		t.Errorf("%s: satfast %s (%s) disagrees with search %v on %s",
			name, d.Verdict, d.Reason, m.OK, r.Key())
	}
}

// TestSatFastVsEnumeration is the fast path's differential safety net:
// across the classic litmus suite and the full campaign generator mix,
// every verdict the polynomial saturation stage hands down (accept or
// reject — fallbacks excluded by construction) must agree with the
// exhaustive result-directed search. Results are drawn from the same
// three sources the campaign sees: enumerated SC outcomes (must never be
// rejected), corrupted variants (usually unreachable), and observed
// machine results from a well-behaved and a weakly ordered config. The
// test also enforces the fast path's reason to exist: at least 60% of
// the machine-observed generator-mix results must be decided without
// enumeration.
func TestSatFastVsEnumeration(t *testing.T) {
	for _, tc := range litmus.Classic() {
		if _, err := ideal.Enumerate(tc.Prog, oracleEnumConfig(), func(it *ideal.Interp) error {
			r := mem.ResultOf(it.Execution())
			if d := satDecideCampaign(tc.Prog, r); d.Verdict == sat.Rejected {
				t.Errorf("%s: satfast rejected SC-reachable result %s (%s)", tc.Name, r.Key(), d.Reason)
			}
			satAgree(t, tc.Name, tc.Prog, corrupt(r))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	specs := generators()
	perSpec := 52 // 4 specs x 52 = 208 programs, the campaign mix
	if testing.Short() {
		perSpec = 6
	}
	var (
		mu               sync.Mutex
		observed, solved int
	)
	t.Run("specs", func(t *testing.T) {
		for si, spec := range specs {
			si, spec := si, spec
			t.Run(spec.name, func(t *testing.T) {
				t.Parallel()
				for s := 0; s < perSpec; s++ {
					p := spec.make(deriveSeed(0xd1ff, uint64(si), uint64(s)))

					// A handful of enumerated SC outcomes: never rejectable,
					// and their corruptions must agree with the search.
					enumerated := 0
					if _, err := ideal.Enumerate(p, oracleEnumConfig(), func(it *ideal.Interp) error {
						if enumerated >= 4 {
							return nil
						}
						enumerated++
						r := mem.ResultOf(it.Execution())
						if d := satDecideCampaign(p, r); d.Verdict == sat.Rejected {
							t.Errorf("%s/%d: satfast rejected SC-reachable result %s (%s)",
								spec.name, s, r.Key(), d.Reason)
						}
						satAgree(t, spec.name, p, corrupt(r))
						return nil
					}); err != nil {
						t.Fatalf("%s/%d: enumerate: %v", spec.name, s, err)
					}

					// Machine-observed results: what campaign oracle queries
					// actually look like. These feed the decision-rate floor.
					for _, mc := range []machine.Config{
						{Policy: policy.SC, Topology: machine.TopoBus, Caches: true, MaxCycles: campaignMaxCycles},
						{Policy: policy.Unconstrained, Topology: machine.TopoNetwork, MaxCycles: campaignMaxCycles},
					} {
						res, err := machine.Run(p, mc, deriveSeed(0x5eed, uint64(si), uint64(s)))
						if err != nil {
							t.Fatalf("%s/%d: machine %s: %v", spec.name, s, mc.Name(), err)
						}
						d := satDecideCampaign(p, res.Result)
						mu.Lock()
						observed++
						if d.Verdict != sat.Fallback {
							solved++
						}
						mu.Unlock()
						satAgree(t, spec.name, p, res.Result)
						satAgree(t, spec.name, p, corrupt(res.Result))
					}
				}
			})
		}
	})
	rate := float64(solved) / float64(observed)
	t.Logf("satfast decided %d/%d machine-observed generator-mix results (%.1f%%)", solved, observed, 100*rate)
	if rate < 0.60 {
		t.Errorf("satfast decision rate %.1f%% on the generator mix, want >= 60%%", 100*rate)
	}
}

// TestSatFastSummaryParity runs the same campaign with the fast path on
// and off: the summaries must be byte-identical once the Oracle stage
// accounting — the only thing the fast path is allowed to change — is
// masked out. Any other difference means the fast path altered a
// verdict.
func TestSatFastSummaryParity(t *testing.T) {
	if testing.Short() {
		t.Skip("two full campaigns; skipped in -short")
	}
	run := func(noSatFast bool) *Summary {
		cfg := smallCampaign(7)
		cfg.NoSatFast = noSatFast
		s, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Perf = nil
		s.Oracle = OracleStats{}
		return s
	}
	on, off := run(false), run(true)
	jOn, err := on.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jOff, err := off.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(jOn) != string(jOff) {
		t.Errorf("summaries diverge beyond oracle accounting:\n satfast on:  %s\n satfast off: %s", jOn, jOff)
	}
}
