package check

import (
	"sync"
	"testing"

	"weakorder/internal/litmus"
	"weakorder/internal/metrics"
)

// TestAxiomVsOperationalOracles is the standing differential between the
// declarative axiomatic engine and the operational oracles: the litmus
// suite must agree exactly (no skips tolerated), and the generator mix
// used by TestOracleEquivalenceNaiveVsReduced must agree on every
// program both sides can afford, with an aggregate floor on how many
// comparisons actually completed.
func TestAxiomVsOperationalOracles(t *testing.T) {
	reg := metrics.NewRegistry()

	t.Run("litmus", func(t *testing.T) {
		for _, p := range litmus.All() {
			p := p
			t.Run(p.Name, func(t *testing.T) {
				res, err := AxiomDiff(p, AxiomDiffConfig{
					MemOpsPerThread: litmusDiffBudget(p.Name),
					Metrics:         reg,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Skipped {
					t.Fatalf("litmus comparison skipped: %s", res.SkipReason)
				}
				if !res.SCAgree {
					t.Errorf("SC outcome sets diverged: axiom-only %v, operational-only %v",
						res.AxiomOnly, res.OperOnly)
				}
				if !res.DRFAgree {
					t.Errorf("race verdicts diverged: axiomatic racy=%v, operational racy=%v",
						res.AxiomRacy, res.OperRacy)
				}
			})
		}
	})

	specs := generators()
	perSpec := 52 // 4 specs x 52 = 208 programs
	if testing.Short() {
		perSpec = 6
	}
	var (
		mu                       sync.Mutex
		progs, compared, skipped int
	)
	t.Run("generators", func(t *testing.T) {
		for si, spec := range specs {
			si, spec := si, spec
			t.Run(spec.name, func(t *testing.T) {
				t.Parallel()
				for s := 0; s < perSpec; s++ {
					p := spec.make(deriveSeed(0xd1ff, uint64(si), uint64(s)))
					res, err := AxiomDiff(p, AxiomDiffConfig{Metrics: reg})
					if err != nil {
						t.Fatalf("%s/%d: %v", spec.name, s, err)
					}
					mu.Lock()
					progs++
					if res.Skipped {
						skipped++
					} else {
						compared++
					}
					mu.Unlock()
					if res.Skipped {
						continue
					}
					if !res.SCAgree {
						t.Errorf("%s/%d: SC outcome sets diverged: axiom-only %v, operational-only %v",
							spec.name, s, res.AxiomOnly, res.OperOnly)
					}
					if !res.DRFAgree {
						t.Errorf("%s/%d: race verdicts diverged: axiomatic racy=%v, operational racy=%v",
							spec.name, s, res.AxiomRacy, res.OperRacy)
					}
				}
			})
		}
	})
	t.Logf("%d generator programs: %d compared, %d skipped (budget)", progs, compared, skipped)
	if !testing.Short() {
		if progs < 200 {
			t.Errorf("differential corpus too small: %d programs (want >= 200)", progs)
		}
		if compared*2 < progs {
			t.Errorf("too many skipped comparisons: %d of %d compared", compared, progs)
		}
	}
	if got := reg.Snapshot().Counters["axiom.diff.disagree"]; got != 0 {
		t.Errorf("axiom.diff.disagree = %d, want 0", got)
	}
}
