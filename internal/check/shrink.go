package check

import (
	"fmt"
	"sort"

	"weakorder/internal/lang"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// Shrink greedily delta-debugs p down to a minimal program still
// satisfying pred (typically "still violates the oracle"). Passes, in
// order: drop whole threads, drop single instructions (retargeting
// branches), demote synchronization operations to data operations,
// zero/halve immediates, and zero initial values. The passes repeat
// until a full sweep accepts nothing or maxTries candidate evaluations
// are spent.
//
// Every accepted candidate is normalized through the litmus round trip
// (lang.Format then lang.Parse) and pred is evaluated on the normalized
// form. This guarantees the returned program *is* the parse of its own
// text — dropping instructions can orphan variables, which re-parsing
// renumbers, and machine behavior depends on raw addresses — so the
// emitted corpus entry reproduces exactly.
//
// The second return value logs each accepted reduction.
func Shrink(p *program.Program, pred func(*program.Program) bool, maxTries int) (*program.Program, []string) {
	cur := p
	if n, err := normalize(p); err == nil {
		cur = n
	}
	var steps []string
	tries := 0
	// try evaluates one candidate; acceptance replaces cur.
	try := func(cand *program.Program, step string) bool {
		if tries >= maxTries {
			return false
		}
		tries++
		norm, err := normalize(cand)
		if err != nil {
			return false
		}
		if !pred(norm) {
			return false
		}
		cur = norm
		steps = append(steps, step)
		return true
	}

	for changed := true; changed && tries < maxTries; {
		changed = false
		changed = dropThreads(&cur, try) || changed
		changed = dropInstrs(&cur, try) || changed
		changed = demoteSyncOps(&cur, try) || changed
		changed = shrinkImmediates(&cur, try) || changed
		changed = zeroInits(&cur, try) || changed
	}
	return cur, steps
}

// normalize round-trips p through the litmus text format so raw
// addresses match what re-parsing the emitted text will produce.
func normalize(p *program.Program) (*program.Program, error) {
	n, err := lang.Parse(lang.Format(p))
	if err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

type tryFunc func(cand *program.Program, step string) bool

// dropThreads attempts to remove each thread, last to first (later
// threads are cheaper to remove: no postcondition index shifts).
func dropThreads(cur **program.Program, try tryFunc) bool {
	changed := false
	for ti := (*cur).NumThreads() - 1; ti >= 0; ti-- {
		if (*cur).NumThreads() <= 1 {
			break
		}
		if condMentionsThreadAtOrAfter(*cur, ti) {
			continue
		}
		cand := clone(*cur)
		cand.Threads = append(cand.Threads[:ti:ti], cand.Threads[ti+1:]...)
		if try(cand, fmt.Sprintf("drop thread %s", (*cur).Threads[ti].Name)) {
			changed = true
		}
	}
	return changed
}

// condMentionsThreadAtOrAfter reports whether the postcondition names a
// register of thread ti or any later thread — dropping ti would shift
// or invalidate those indices.
func condMentionsThreadAtOrAfter(p *program.Program, ti int) bool {
	if p.Cond == nil {
		return false
	}
	for _, t := range p.Cond.Terms {
		if t.Thread >= ti {
			return true
		}
	}
	return false
}

// dropInstrs attempts to remove each instruction, last to first within
// each thread, retargeting branches across the gap.
func dropInstrs(cur **program.Program, try tryFunc) bool {
	changed := false
	for ti := 0; ti < (*cur).NumThreads(); ti++ {
		for i := len((*cur).Threads[ti].Instrs) - 1; i >= 0; i-- {
			cand := clone(*cur)
			th := &cand.Threads[ti]
			th.Instrs = append(th.Instrs[:i:i], th.Instrs[i+1:]...)
			for j := range th.Instrs {
				if th.Instrs[j].Op.IsBranch() && th.Instrs[j].Target > i {
					th.Instrs[j].Target--
				}
			}
			if try(cand, fmt.Sprintf("drop %s@%d", (*cur).Threads[ti].Name, i)) {
				changed = true
			}
		}
	}
	return changed
}

// demoteSyncOps attempts to replace each synchronization operation with
// its data counterpart (sld→ld, sst→st, tas/swap→ld), isolating whether
// the violation needs the synchronization semantics at all.
func demoteSyncOps(cur **program.Program, try tryFunc) bool {
	changed := false
	for ti := 0; ti < (*cur).NumThreads(); ti++ {
		for i := range (*cur).Threads[ti].Instrs {
			in := (*cur).Threads[ti].Instrs[i]
			var demoted program.Instr
			switch in.Op {
			case program.OpSyncLoad:
				demoted = program.Instr{Op: program.OpLoad, Rd: in.Rd, Addr: in.Addr, Sym: in.Sym}
			case program.OpSyncStore:
				demoted = program.Instr{Op: program.OpStore, Rs: in.Rs, Imm: in.Imm, UseImm: in.UseImm, Addr: in.Addr, Sym: in.Sym}
			case program.OpTAS, program.OpSwap:
				demoted = program.Instr{Op: program.OpLoad, Rd: in.Rd, Addr: in.Addr, Sym: in.Sym}
			default:
				continue
			}
			cand := clone(*cur)
			cand.Threads[ti].Instrs[i] = demoted
			if try(cand, fmt.Sprintf("demote %s@%d %v->%v", (*cur).Threads[ti].Name, i, in.Op, demoted.Op)) {
				changed = true
			}
		}
	}
	return changed
}

// shrinkImmediates attempts to zero, then halve, each nonzero immediate.
func shrinkImmediates(cur **program.Program, try tryFunc) bool {
	changed := false
	for ti := 0; ti < (*cur).NumThreads(); ti++ {
		for i := range (*cur).Threads[ti].Instrs {
			in := (*cur).Threads[ti].Instrs[i]
			usesImm := in.UseImm || in.Op == program.OpLoadImm || in.Op == program.OpAddImm
			if !usesImm || in.Imm == 0 {
				continue
			}
			cand := clone(*cur)
			cand.Threads[ti].Instrs[i].Imm = 0
			if try(cand, fmt.Sprintf("imm %s@%d ->0", (*cur).Threads[ti].Name, i)) {
				changed = true
				continue
			}
			if in.Imm > 1 || in.Imm < -1 {
				cand = clone(*cur)
				cand.Threads[ti].Instrs[i].Imm = in.Imm / 2
				if try(cand, fmt.Sprintf("imm %s@%d ->%d", (*cur).Threads[ti].Name, i, in.Imm/2)) {
					changed = true
				}
			}
		}
	}
	return changed
}

// zeroInits attempts to drop each nonzero initial value.
func zeroInits(cur **program.Program, try tryFunc) bool {
	changed := false
	for _, a := range initAddrs(*cur) {
		if (*cur).Init[mem.Addr(a)] == 0 {
			continue
		}
		cand := clone(*cur)
		delete(cand.Init, mem.Addr(a))
		if try(cand, fmt.Sprintf("init %s ->0", symOr(*cur, a))) {
			changed = true
		}
	}
	return changed
}

func initAddrs(p *program.Program) []int {
	addrs := make([]int, 0, len(p.Init))
	for a := range p.Init {
		addrs = append(addrs, int(a))
	}
	sort.Ints(addrs) // deterministic shrink-step logs
	return addrs
}

func symOr(p *program.Program, a int) string {
	if s := p.SymbolFor(mem.Addr(a)); s != "" {
		return s
	}
	return fmt.Sprintf("v%d", a)
}

// clone deep-copies a program so shrink candidates never alias the
// current best.
func clone(p *program.Program) *program.Program {
	out := &program.Program{Name: p.Name}
	out.Threads = make([]program.Thread, len(p.Threads))
	for i, t := range p.Threads {
		out.Threads[i] = program.Thread{Name: t.Name, Instrs: append([]program.Instr(nil), t.Instrs...)}
	}
	if p.Init != nil {
		out.Init = make(map[mem.Addr]mem.Value, len(p.Init))
		for a, v := range p.Init {
			out.Init[a] = v
		}
	}
	if p.Symbols != nil {
		out.Symbols = make(map[string]mem.Addr, len(p.Symbols))
		for s, a := range p.Symbols {
			out.Symbols[s] = a
		}
	}
	if p.Cond != nil {
		out.Cond = &program.Cond{Terms: append([]program.CondTerm(nil), p.Cond.Terms...)}
	}
	return out
}
