package check

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"weakorder/internal/metrics"
	"weakorder/internal/policy"
)

// TestWorkerPanicIsolation injects a panic on every WO-Def2 run and
// asserts the campaign absorbs all of them: each panic becomes a
// KindWorkerPanic violation with a stack and a shrunk reproducer, the
// (program, config) pair is quarantined, and every other configuration
// still completes normally.
func TestWorkerPanicIsolation(t *testing.T) {
	cfg := smallCampaign(21)
	cfg.Fault = PanicFault(policy.WODef2)
	cfg.CorpusDir = t.TempDir()
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// WO-Def2 runs cached-only on both topologies: one panic per
	// (program, topology), the remaining seeds quarantined.
	want := s.Programs * 2
	if s.WorkerPanics != want {
		t.Fatalf("WorkerPanics = %d, want %d", s.WorkerPanics, want)
	}
	if len(s.Violations) != want {
		t.Fatalf("got %d violations, want %d panic reports", len(s.Violations), want)
	}
	for _, v := range s.Violations {
		if v.Kind != KindWorkerPanic {
			t.Fatalf("unexpected %s violation (panics must not misreport as contract violations)", v.Kind)
		}
		if !strings.Contains(v.Stack, "injected worker panic") {
			t.Errorf("panic report lacks the panic message in its stack:\n%s", v.Stack)
		}
		if v.Outcome != "panic" {
			t.Errorf("panic report outcome = %q, want \"panic\"", v.Outcome)
		}
		if v.Litmus == "" {
			t.Error("panic report carries no reproducer program")
		}
	}
	// The healthy part of the matrix must have run in full: every
	// non-WO-Def2 sim present and oracle-adjudicated.
	healthy := 0
	for _, row := range s.Coverage {
		if row.Policy != policy.WODef2.String() {
			healthy += row.Sims
		}
	}
	if wantHealthy := s.Programs * (s.Configs - 2); healthy != wantHealthy {
		t.Fatalf("healthy configs ran %d sims, want %d — a panic starved unrelated work", healthy, wantHealthy)
	}
	if got := s.Metrics().Counters["check.panic.recovered"]; got != uint64(want) {
		t.Fatalf("check.panic.recovered = %d, want %d", got, want)
	}
	// Panic reproducers land in the corpus and replay clean (the
	// injected hook is absent on replay).
	entries, err := LoadCorpus(cfg.CorpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no panic reproducers written to the corpus")
	}
	for _, e := range entries {
		if err := Replay(e, 1); err != nil {
			t.Errorf("panic reproducer replay: %v", err)
		}
	}
}

// TestWorkerPanicDeterministic: recovered panics must not cost the
// campaign its worker-count invariance.
func TestWorkerPanicDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full campaigns; skipped in -short")
	}
	cfg := smallCampaign(22)
	cfg.Fault = PanicFault(policy.WODef2)
	cfg.Workers = 1
	s1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	s2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := s1.JSON()
	j2, _ := s2.JSON()
	if string(j1) != string(j2) {
		t.Fatalf("panicky summaries differ across worker counts:\n--- workers=1\n%s\n--- workers=4\n%s", j1, j2)
	}
}

// TestCheckDeadlineSkips runs with an already-expired deadline: every
// oracle decision must be abandoned cooperatively and recorded as a
// skip — no hangs, no violations, no verdicts invented.
func TestCheckDeadlineSkips(t *testing.T) {
	cfg := smallCampaign(23)
	cfg.CheckDeadline = time.Nanosecond
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Violations) != 0 {
		t.Fatalf("deadline skips produced %d violations; a skipped check must not adjudicate", len(s.Violations))
	}
	if s.Oracle.Queries != 0 {
		t.Fatalf("oracle answered %d queries under a 1ns deadline", s.Oracle.Queries)
	}
	if s.Sims != s.Programs*s.Configs {
		t.Fatalf("sims = %d, want %d (simulations themselves are not deadline-bound)", s.Sims, s.Programs*s.Configs)
	}
	if s.DeadlineSkips == 0 || len(s.Skips) != s.DeadlineSkips {
		t.Fatalf("DeadlineSkips = %d with %d records", s.DeadlineSkips, len(s.Skips))
	}
	stages := map[string]int{}
	for _, sk := range s.Skips {
		stages[sk.Stage]++
		if sk.Reason != "deadline" {
			t.Errorf("skip reason %q, want deadline", sk.Reason)
		}
	}
	if stages["oracle"] == 0 || stages["classify"] == 0 {
		t.Fatalf("expected both oracle and classify skips, got %v", stages)
	}
	m := s.Metrics()
	if m.Counters["check.deadline.skips"] != uint64(s.DeadlineSkips) {
		t.Fatalf("check.deadline.skips = %d, want %d", m.Counters["check.deadline.skips"], s.DeadlineSkips)
	}
	if m.Counters[metrics.Labeled("check.skips_total", "stage", "oracle")] == 0 ||
		m.Counters[metrics.Labeled("check.skips_total", "stage", "classify")] == 0 {
		t.Fatalf("per-stage labeled skip counters missing: %v", m.Counters)
	}
}

// TestCheckDeadlineOffIsReproducible: with deadlines disabled the
// Summary must carry no skip records at all (the reproducibility
// contract documented on CheckDeadline).
func TestCheckDeadlineOffIsReproducible(t *testing.T) {
	s, err := Run(smallCampaign(24))
	if err != nil {
		t.Fatal(err)
	}
	if s.DeadlineSkips != 0 || len(s.Skips) != 0 {
		t.Fatalf("deadline-free campaign recorded %d skips", len(s.Skips))
	}
}

// testReport builds a small, valid violation report (with a parseable
// litmus body) for corpus-store tests.
func testReport(t *testing.T, idx int) ViolationReport {
	t.Helper()
	spec := generators()[0]
	p := spec.make(deriveSeed(99, uint64(idx), 0x67656e))
	return ViolationReport{
		Kind:         KindSCPolicy,
		Program:      p.Name,
		Generator:    spec.name,
		GenSeed:      1,
		ProgramIndex: idx,
		Config:       ConfigDesc{Policy: "SC", Topology: "bus", Caches: true},
		MachineSeed:  7,
		Outcome:      "x",
		Instructions: instructionCount(p),
		Litmus:       formatProgram(p),
	}
}

// TestCorpusChecksumRoundTrip: WriteViolation stamps a checksum and
// LoadCorpus verifies it.
func TestCorpusChecksumRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := WriteViolation(dir, testReport(t, 0)); err != nil {
		t.Fatal(err)
	}
	entries, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("loaded %d entries, want 1", len(entries))
	}
	if entries[0].Report.Checksum == "" {
		t.Fatal("written entry carries no checksum")
	}
	// Tamper with the stored report: load must now refuse it.
	jsonPath := filepath.Join(dir, corpusName(entries[0].Report)+".json")
	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(b), `"machineSeed": 7`, `"machineSeed": 8`, 1)
	if tampered == string(b) {
		t.Fatal("tamper target not found in report JSON")
	}
	if err := os.WriteFile(jsonPath, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("tampered corpus loaded without a checksum error (err=%v)", err)
	}
}

// TestRecoverCorpus exercises the recovery pass over every damage class:
// orphan temp debris, a corrupt report, an orphan .litmus, all
// quarantined while the valid entry survives.
func TestRecoverCorpus(t *testing.T) {
	dir := t.TempDir()
	if err := WriteViolation(dir, testReport(t, 0)); err != nil {
		t.Fatal(err)
	}
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(tmpPrefix+"sc-policy-p0009-SC.json-123", `{"torn`)
	write("sc-policy-p0007-SC.json", `{"kind":"sc-policy","litmus":"bogus`) // torn mid-write
	write("sc-policy-p0007-SC.litmus", "p0 { }\n")
	write("orphan-p0008-SC.litmus", "p0 { }\n")

	kept, quarantined, err := RecoverCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 1 {
		t.Fatalf("kept %d entries, want 1", kept)
	}
	if len(quarantined) != 3 {
		t.Fatalf("quarantined %v, want 3 entries", quarantined)
	}
	// The survivors load clean; the damage sits in quarantine/ for
	// post-mortem instead of being deleted.
	entries, err := LoadCorpus(dir)
	if err != nil {
		t.Fatalf("corpus still unloadable after recovery: %v", err)
	}
	if len(entries) != 1 {
		t.Fatalf("loaded %d entries after recovery, want 1", len(entries))
	}
	for _, f := range []string{"sc-policy-p0007-SC.json", "sc-policy-p0007-SC.litmus", "orphan-p0008-SC.litmus"} {
		if _, err := os.Stat(filepath.Join(dir, quarantineDir, f)); err != nil {
			t.Errorf("%s not quarantined: %v", f, err)
		}
	}
	// Idempotent: a second pass finds nothing left to do.
	kept, quarantined, err = RecoverCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 1 || len(quarantined) != 0 {
		t.Fatalf("second recovery pass: kept=%d quarantined=%v, want 1/none", kept, quarantined)
	}
}

// TestCampaignRecoversCorpusOnStart: Run with a CorpusDir containing a
// torn entry quarantines it instead of failing the campaign or the
// post-campaign load.
func TestCampaignRecoversCorpusOnStart(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "sc-policy-p0001-SC.json"), []byte(`{"torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := smallCampaign(25)
	cfg.CorpusDir = dir
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err != nil {
		t.Fatalf("corpus unloadable after campaign with recovery pass: %v", err)
	}
}
