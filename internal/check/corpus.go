package check

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"weakorder/internal/drf"
	"weakorder/internal/hb"
	"weakorder/internal/ideal"
	"weakorder/internal/lang"
	"weakorder/internal/machine"
	"weakorder/internal/program"
	"weakorder/internal/scmatch"
)

// formatProgram renders a program as corpus litmus text.
func formatProgram(p *program.Program) string { return lang.Format(p) }

// writeCorpus admits one shrunk violation report: it is persisted as a
// reproducer when a corpus directory is configured, and published to the
// control plane's live violation feed either way (the feed announces
// violations, not files).
func (c *campaign) writeCorpus(rep *ViolationReport) error {
	if c.cfg.CorpusDir != "" {
		if err := WriteViolation(c.cfg.CorpusDir, *rep); err != nil {
			return err
		}
	}
	c.pub.noteViolation(*rep)
	return nil
}

// corpusName derives the entry's file stem from its report.
func corpusName(rep ViolationReport) string {
	pol := strings.NewReplacer("+", "", "/", "-").Replace(rep.Config.Policy)
	return fmt.Sprintf("%s-p%04d-%s", rep.Kind, rep.ProgramIndex, pol)
}

// tmpPrefix marks in-flight corpus writes; recovery sweeps orphans left
// by a crash between create and rename.
const tmpPrefix = ".tmp-"

// atomicWriteFile writes data to path crash-atomically: a temp file in
// the same directory is written, fsynced, and renamed over path, then
// the directory is fsynced so the rename itself is durable. Readers
// never observe a torn file — only the old content or the new.
func atomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, tmpPrefix+base+"-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-completed rename survives a
// crash. Filesystems that reject directory fsync (some network mounts)
// degrade gracefully.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// reportChecksum fingerprints a report: sha256 over its JSON encoding
// with the Checksum field blanked. Load-time verification catches
// bit rot and hand-edits that silently diverge the reproducer from what
// the campaign observed.
func reportChecksum(rep ViolationReport) string {
	rep.Checksum = ""
	b, err := json.Marshal(rep)
	if err != nil {
		// ViolationReport is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("check: marshal report for checksum: %v", err))
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

// WriteViolation stores a reproducer pair <name>.litmus + <name>.json in
// dir, creating it if needed. Both files are written atomically
// (temp + fsync + rename) and the report carries a content checksum, so
// a crash mid-write can never leave a torn entry that poisons later
// replay — at worst an orphan temp file, which RecoverCorpus sweeps.
func WriteViolation(dir string, rep ViolationReport) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := corpusName(rep)
	if err := atomicWriteFile(filepath.Join(dir, name+".litmus"), []byte(rep.Litmus), 0o644); err != nil {
		return err
	}
	rep.Checksum = reportChecksum(rep)
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return atomicWriteFile(filepath.Join(dir, name+".json"), append(b, '\n'), 0o644)
}

// CorpusEntry is one loaded reproducer.
type CorpusEntry struct {
	// Name is the file stem.
	Name string
	// Report is the recorded violation.
	Report ViolationReport
	// Prog is the parsed litmus program.
	Prog *program.Program
}

// loadEntry reads and validates one reproducer pair given its .json
// path: parseable report, matching .litmus text, parseable program, and
// — when the report carries one — a matching content checksum. Entries
// written before checksums existed load without verification.
func loadEntry(jsonPath string) (CorpusEntry, error) {
	var e CorpusEntry
	b, err := os.ReadFile(jsonPath)
	if err != nil {
		return e, err
	}
	var rep ViolationReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return e, fmt.Errorf("corpus %s: %w", jsonPath, err)
	}
	if rep.Checksum != "" {
		if got := reportChecksum(rep); got != rep.Checksum {
			return e, fmt.Errorf("corpus %s: checksum mismatch (recorded %.12s…, computed %.12s…): entry is corrupt or hand-edited",
				jsonPath, rep.Checksum, got)
		}
	}
	litmusPath := strings.TrimSuffix(jsonPath, ".json") + ".litmus"
	lb, err := os.ReadFile(litmusPath)
	if err != nil {
		return e, err
	}
	if string(lb) != rep.Litmus {
		return e, fmt.Errorf("corpus %s: .litmus file diverged from the report's recorded text", jsonPath)
	}
	p, err := lang.Parse(string(lb))
	if err != nil {
		return e, fmt.Errorf("corpus %s: %w", litmusPath, err)
	}
	return CorpusEntry{
		Name:   strings.TrimSuffix(filepath.Base(jsonPath), ".json"),
		Report: rep,
		Prog:   p,
	}, nil
}

// LoadCorpus reads every .json/.litmus reproducer pair in dir, sorted by
// name. A missing or empty directory yields an empty corpus. Any invalid
// entry is an error — use RecoverCorpus first to quarantine damage from
// a crashed (pre-hardening) run instead of failing the load.
func LoadCorpus(dir string) ([]CorpusEntry, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	var out []CorpusEntry
	for _, f := range files {
		e, err := loadEntry(f)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// QuarantinedEntry records one corpus entry set aside by RecoverCorpus.
type QuarantinedEntry struct {
	// Name is the entry's file stem (or file name, for stray debris).
	Name string
	// Reason says what validation failed.
	Reason string
}

// quarantineDir is where RecoverCorpus moves damaged entries, relative
// to the corpus directory.
const quarantineDir = "quarantine"

// RecoverCorpus scans a corpus directory and makes it loadable again
// after a crash or corruption: orphan temp files from interrupted
// atomic writes are deleted, and any entry that fails validation
// (unparseable report, checksum mismatch, diverged or missing .litmus
// twin, orphan .litmus without a report) is moved — both halves — into
// dir/quarantine/ for post-mortem rather than deleted. It returns the
// number of valid entries kept and the quarantined set. A missing
// directory is an empty, valid corpus.
func RecoverCorpus(dir string) (kept int, quarantined []QuarantinedEntry, err error) {
	if _, serr := os.Stat(dir); os.IsNotExist(serr) {
		return 0, nil, nil
	}
	names, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		return 0, nil, err
	}
	sort.Strings(names)
	havePair := make(map[string]bool) // stems with a .json report
	for _, f := range names {
		base := filepath.Base(f)
		if strings.HasPrefix(base, tmpPrefix) {
			// In-flight write that never reached rename; the entry it was
			// building either exists complete (old content) or not at all.
			if rerr := os.Remove(f); rerr != nil {
				return 0, nil, rerr
			}
			quarantined = append(quarantined, QuarantinedEntry{Name: base, Reason: "orphan temp file (removed)"})
			continue
		}
		if strings.HasSuffix(base, ".json") {
			havePair[strings.TrimSuffix(base, ".json")] = true
		}
	}
	for _, f := range names {
		base := filepath.Base(f)
		switch {
		case strings.HasPrefix(base, tmpPrefix):
			continue
		case strings.HasSuffix(base, ".json"):
			stem := strings.TrimSuffix(base, ".json")
			if _, lerr := loadEntry(f); lerr != nil {
				if qerr := quarantineEntry(dir, stem); qerr != nil {
					return 0, nil, qerr
				}
				quarantined = append(quarantined, QuarantinedEntry{Name: stem, Reason: lerr.Error()})
				continue
			}
			kept++
		case strings.HasSuffix(base, ".litmus"):
			stem := strings.TrimSuffix(base, ".litmus")
			if !havePair[stem] {
				if qerr := quarantineEntry(dir, stem); qerr != nil {
					return 0, nil, qerr
				}
				quarantined = append(quarantined, QuarantinedEntry{Name: stem, Reason: "orphan .litmus without a report"})
			}
		}
	}
	return kept, quarantined, nil
}

// quarantineEntry moves both halves of entry stem (whichever exist) into
// dir/quarantine/.
func quarantineEntry(dir, stem string) error {
	qdir := filepath.Join(dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return err
	}
	for _, ext := range []string{".json", ".litmus"} {
		src := filepath.Join(dir, stem+ext)
		if _, err := os.Stat(src); os.IsNotExist(err) {
			continue
		}
		if err := os.Rename(src, filepath.Join(qdir, stem+ext)); err != nil {
			return err
		}
	}
	return syncDir(dir)
}

// Replay re-runs a corpus entry against today's simulator: the recorded
// machine seed plus extraSeeds more, asserting the recorded contract now
// holds — the entry was minimized from a violation, so replay passing
// means the bug it captured stays fixed. Definition 2 entries are also
// re-checked to still obey DRF0 (otherwise the appears-SC assertion
// would be vacuous).
//
// KindLiveness entries assert completion: the run must finish without a
// watchdog death. Entries recorded under a DisableRetry plan are the one
// exception — that configuration removes the recovery mechanism on
// purpose, so the entry is a demonstration, and replay asserts it still
// wedges.
func Replay(e CorpusEntry, extraSeeds int) error {
	mcfg, err := e.Report.Config.Machine()
	if err != nil {
		return fmt.Errorf("%s: %w", e.Name, err)
	}
	mcfg.MaxCycles = campaignMaxCycles
	if e.Report.Kind == KindLiveness {
		return replayLiveness(e, mcfg, extraSeeds)
	}
	if e.Report.Kind == KindWorkerPanic {
		return replayPanic(e, mcfg, extraSeeds)
	}
	if e.Report.Kind == KindDefinition2 {
		v, err := drf.Check(e.Prog, hb.SyncAll, boundedDRFConfig())
		switch {
		case err != nil && !errors.Is(err, ideal.ErrBudget):
			return fmt.Errorf("%s: DRF check: %w", e.Name, err)
		case !v.DRF:
			return fmt.Errorf("%s: corpus program no longer obeys DRF0 (%d races)", e.Name, len(v.Races))
		}
		// A budget overrun with no race found is tolerated: entries from
		// DRF-by-construction generators (spin loops) can exceed any
		// exhaustive-check budget, and every shrink-accepted candidate
		// already passed this bounded check during the campaign.
	}
	seeds := []int64{e.Report.MachineSeed}
	for i := 0; i < extraSeeds; i++ {
		seeds = append(seeds, deriveSeed(e.Report.MachineSeed, uint64(i)))
	}
	for _, seed := range seeds {
		res, err := machine.Run(e.Prog, mcfg, seed)
		if err != nil {
			return fmt.Errorf("%s (seed %d): %w", e.Name, seed, err)
		}
		m, err := scmatch.Matches(e.Prog, res.Result, scmatch.Config{MaxStates: oracleMatchMaxStates})
		if err != nil {
			return fmt.Errorf("%s (seed %d): scmatch: %w", e.Name, seed, err)
		}
		if !m.OK {
			return fmt.Errorf("%s (seed %d): result does not appear SC — the recorded %s violation has regressed:\n%s",
				e.Name, seed, e.Report.Kind, res.Result)
		}
	}
	return nil
}

// replayPanic replays a KindWorkerPanic entry: the recorded program
// must now simulate to completion without panicking (the usual origin —
// an injected test fault hook — is absent on replay, so this asserts
// the simulator itself stays panic-free on the reproducer).
func replayPanic(e CorpusEntry, mcfg machine.Config, extraSeeds int) error {
	seeds := []int64{e.Report.MachineSeed}
	for i := 0; i < extraSeeds; i++ {
		seeds = append(seeds, deriveSeed(e.Report.MachineSeed, uint64(i)))
	}
	for _, seed := range seeds {
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("%s (seed %d): the recorded worker panic has regressed: %v", e.Name, seed, r)
				}
			}()
			if _, rerr := machine.Run(e.Prog, mcfg, seed); rerr != nil {
				var le *machine.LivenessError
				if !errors.As(rerr, &le) {
					return fmt.Errorf("%s (seed %d): %w", e.Name, seed, rerr)
				}
			}
			return nil
		}()
		if err != nil {
			return err
		}
	}
	return nil
}

// replayLiveness replays a KindLiveness entry; see Replay.
func replayLiveness(e CorpusEntry, mcfg machine.Config, extraSeeds int) error {
	demonstration := mcfg.Faults != nil && mcfg.Faults.DisableRetry
	if demonstration {
		// The wedge is the recorded behavior; keep the probe cheap.
		mcfg.MaxCycles = livenessShrinkMaxCycles
	}
	seeds := []int64{e.Report.MachineSeed}
	for i := 0; i < extraSeeds; i++ {
		seeds = append(seeds, deriveSeed(e.Report.MachineSeed, uint64(i)))
	}
	for _, seed := range seeds {
		_, err := machine.Run(e.Prog, mcfg, seed)
		var le *machine.LivenessError
		wedged := errors.As(err, &le)
		switch {
		case err != nil && !wedged:
			return fmt.Errorf("%s (seed %d): %w", e.Name, seed, err)
		case demonstration && seed == e.Report.MachineSeed && !wedged:
			return fmt.Errorf("%s (seed %d): retry-disabled demonstration no longer wedges", e.Name, seed)
		case !demonstration && wedged:
			return fmt.Errorf("%s (seed %d): the recorded liveness violation has regressed:\n%s",
				e.Name, seed, le.Report)
		}
	}
	return nil
}
