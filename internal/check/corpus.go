package check

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"weakorder/internal/drf"
	"weakorder/internal/hb"
	"weakorder/internal/ideal"
	"weakorder/internal/lang"
	"weakorder/internal/machine"
	"weakorder/internal/program"
	"weakorder/internal/scmatch"
)

// formatProgram renders a program as corpus litmus text.
func formatProgram(p *program.Program) string { return lang.Format(p) }

// corpusName derives the entry's file stem from its report.
func corpusName(rep ViolationReport) string {
	pol := strings.NewReplacer("+", "", "/", "-").Replace(rep.Config.Policy)
	return fmt.Sprintf("%s-p%04d-%s", rep.Kind, rep.ProgramIndex, pol)
}

// WriteViolation stores a reproducer pair <name>.litmus + <name>.json in
// dir, creating it if needed.
func WriteViolation(dir string, rep ViolationReport) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := corpusName(rep)
	if err := os.WriteFile(filepath.Join(dir, name+".litmus"), []byte(rep.Litmus), 0o644); err != nil {
		return err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".json"), append(b, '\n'), 0o644)
}

// CorpusEntry is one loaded reproducer.
type CorpusEntry struct {
	// Name is the file stem.
	Name string
	// Report is the recorded violation.
	Report ViolationReport
	// Prog is the parsed litmus program.
	Prog *program.Program
}

// LoadCorpus reads every .json/.litmus reproducer pair in dir, sorted by
// name. A missing or empty directory yields an empty corpus.
func LoadCorpus(dir string) ([]CorpusEntry, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	var out []CorpusEntry
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var rep ViolationReport
		if err := json.Unmarshal(b, &rep); err != nil {
			return nil, fmt.Errorf("corpus %s: %w", f, err)
		}
		litmusPath := strings.TrimSuffix(f, ".json") + ".litmus"
		lb, err := os.ReadFile(litmusPath)
		if err != nil {
			return nil, err
		}
		if string(lb) != rep.Litmus {
			return nil, fmt.Errorf("corpus %s: .litmus file diverged from the report's recorded text", f)
		}
		p, err := lang.Parse(string(lb))
		if err != nil {
			return nil, fmt.Errorf("corpus %s: %w", litmusPath, err)
		}
		out = append(out, CorpusEntry{
			Name:   strings.TrimSuffix(filepath.Base(f), ".json"),
			Report: rep,
			Prog:   p,
		})
	}
	return out, nil
}

// Replay re-runs a corpus entry against today's simulator: the recorded
// machine seed plus extraSeeds more, asserting the recorded contract now
// holds — the entry was minimized from a violation, so replay passing
// means the bug it captured stays fixed. Definition 2 entries are also
// re-checked to still obey DRF0 (otherwise the appears-SC assertion
// would be vacuous).
//
// KindLiveness entries assert completion: the run must finish without a
// watchdog death. Entries recorded under a DisableRetry plan are the one
// exception — that configuration removes the recovery mechanism on
// purpose, so the entry is a demonstration, and replay asserts it still
// wedges.
func Replay(e CorpusEntry, extraSeeds int) error {
	mcfg, err := e.Report.Config.Machine()
	if err != nil {
		return fmt.Errorf("%s: %w", e.Name, err)
	}
	mcfg.MaxCycles = campaignMaxCycles
	if e.Report.Kind == KindLiveness {
		return replayLiveness(e, mcfg, extraSeeds)
	}
	if e.Report.Kind == KindDefinition2 {
		v, err := drf.Check(e.Prog, hb.SyncAll, boundedDRFConfig())
		switch {
		case err != nil && !errors.Is(err, ideal.ErrBudget):
			return fmt.Errorf("%s: DRF check: %w", e.Name, err)
		case !v.DRF:
			return fmt.Errorf("%s: corpus program no longer obeys DRF0 (%d races)", e.Name, len(v.Races))
		}
		// A budget overrun with no race found is tolerated: entries from
		// DRF-by-construction generators (spin loops) can exceed any
		// exhaustive-check budget, and every shrink-accepted candidate
		// already passed this bounded check during the campaign.
	}
	seeds := []int64{e.Report.MachineSeed}
	for i := 0; i < extraSeeds; i++ {
		seeds = append(seeds, deriveSeed(e.Report.MachineSeed, uint64(i)))
	}
	for _, seed := range seeds {
		res, err := machine.Run(e.Prog, mcfg, seed)
		if err != nil {
			return fmt.Errorf("%s (seed %d): %w", e.Name, seed, err)
		}
		m, err := scmatch.Matches(e.Prog, res.Result, scmatch.Config{MaxStates: oracleMatchMaxStates})
		if err != nil {
			return fmt.Errorf("%s (seed %d): scmatch: %w", e.Name, seed, err)
		}
		if !m.OK {
			return fmt.Errorf("%s (seed %d): result does not appear SC — the recorded %s violation has regressed:\n%s",
				e.Name, seed, e.Report.Kind, res.Result)
		}
	}
	return nil
}

// replayLiveness replays a KindLiveness entry; see Replay.
func replayLiveness(e CorpusEntry, mcfg machine.Config, extraSeeds int) error {
	demonstration := mcfg.Faults != nil && mcfg.Faults.DisableRetry
	if demonstration {
		// The wedge is the recorded behavior; keep the probe cheap.
		mcfg.MaxCycles = livenessShrinkMaxCycles
	}
	seeds := []int64{e.Report.MachineSeed}
	for i := 0; i < extraSeeds; i++ {
		seeds = append(seeds, deriveSeed(e.Report.MachineSeed, uint64(i)))
	}
	for _, seed := range seeds {
		_, err := machine.Run(e.Prog, mcfg, seed)
		var le *machine.LivenessError
		wedged := errors.As(err, &le)
		switch {
		case err != nil && !wedged:
			return fmt.Errorf("%s (seed %d): %w", e.Name, seed, err)
		case demonstration && seed == e.Report.MachineSeed && !wedged:
			return fmt.Errorf("%s (seed %d): retry-disabled demonstration no longer wedges", e.Name, seed)
		case !demonstration && wedged:
			return fmt.Errorf("%s (seed %d): the recorded liveness violation has regressed:\n%s",
				e.Name, seed, le.Report)
		}
	}
	return nil
}
