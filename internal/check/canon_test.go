package check

import (
	"testing"

	"weakorder/internal/gen"
	"weakorder/internal/ideal"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// isoCopy builds an isomorphic copy of p: threads rotated by one
// position and every address mapped through a bijection, with symbols
// and names scrambled (they are cosmetic).
func isoCopy(p *program.Program) *program.Program {
	remap := func(a mem.Addr) mem.Addr { return a*3 + 11 }
	q := &program.Program{
		Name:    p.Name + "-iso",
		Threads: make([]program.Thread, len(p.Threads)),
		Init:    make(map[mem.Addr]mem.Value, len(p.Init)),
		Symbols: make(map[string]mem.Addr, len(p.Symbols)),
	}
	for i := range p.Threads {
		src := p.Threads[(i+1)%len(p.Threads)]
		th := program.Thread{Name: src.Name + "x", Instrs: make([]program.Instr, len(src.Instrs))}
		copy(th.Instrs, src.Instrs)
		for j := range th.Instrs {
			if th.Instrs[j].Op.IsMemory() {
				th.Instrs[j].Addr = remap(th.Instrs[j].Addr)
				th.Instrs[j].Sym = ""
			}
		}
		q.Threads[i] = th
	}
	for a, v := range p.Init {
		q.Init[remap(a)] = v
	}
	for s, a := range p.Symbols {
		q.Symbols[s+"x"] = remap(a)
	}
	return q
}

// enumerateCanonKeys collects a program's full SC outcome set in
// canonical coordinates.
func enumerateCanonKeys(t *testing.T, p *program.Program, cn canon) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	if _, err := ideal.Enumerate(p, oracleEnumConfig(), func(it *ideal.Interp) error {
		out[cn.key(mem.ResultOf(it.Execution()))] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// Isomorphic programs (threads permuted, addresses renamed) must share a
// canonical hash, and their SC outcome sets must coincide exactly in
// canonical coordinates — that is the property the shared oracle entry
// relies on for soundness.
func TestCanonicalizationMergesIsomorphicPrograms(t *testing.T) {
	progs := []*program.Program{
		gen.Racy(gen.RacyConfig{Procs: 2, Vars: 3, OpsPerProc: 4, SyncFraction: 4}, 9),
		gen.RaceFree(gen.RaceFreeConfig{
			Procs: 2, Locks: 1, SharedPerLock: 2, PrivatePerProc: 1,
			Sections: 1, OpsPerSection: 2, PrivateOps: 1,
		}, 3),
		gen.Racy(gen.RacyConfig{Procs: 3, Vars: 2, OpsPerProc: 3, SyncFraction: 3}, 21),
	}
	for _, p := range progs {
		q := isoCopy(p)
		cnP, cnQ := canonicalize(p), canonicalize(q)
		if cnP.inv == nil {
			t.Fatalf("%s: campaign-shaped program fell back to the raw hash", p.Name)
		}
		if cnP.hash != cnQ.hash {
			t.Fatalf("%s: isomorphic copy hashed differently:\n p %s\n q %s", p.Name, cnP.hash, cnQ.hash)
		}
		keysP := enumerateCanonKeys(t, p, cnP)
		keysQ := enumerateCanonKeys(t, q, cnQ)
		if len(keysP) != len(keysQ) {
			t.Fatalf("%s: canonical outcome sets differ in size: %d vs %d", p.Name, len(keysP), len(keysQ))
		}
		for k := range keysP {
			if !keysQ[k] {
				t.Fatalf("%s: canonical outcome %q missing from isomorphic copy's set", p.Name, k)
			}
		}
	}
}

// Distinct programs must not collide: changing one immediate changes the
// canonical hash.
func TestCanonicalizationSeparatesDistinctPrograms(t *testing.T) {
	p := gen.Racy(gen.RacyConfig{Procs: 2, Vars: 3, OpsPerProc: 4, SyncFraction: 4}, 9)
	q := isoCopy(p)
	for i := range q.Threads[0].Instrs {
		in := &q.Threads[0].Instrs[i]
		if in.UseImm || in.Op == program.OpLoadImm {
			in.Imm++
			break
		}
	}
	if canonicalize(p).hash == canonicalize(q).hash {
		t.Fatal("programs differing in an immediate share a canonical hash")
	}
}

// Programs carrying a litmus postcondition fall back to the raw hash
// with the identity renaming: the Cond references concrete threads and
// addresses, which canonical renaming would silently detach.
func TestCanonicalizationSkipsPostconditions(t *testing.T) {
	p := gen.Racy(gen.RacyConfig{Procs: 2, Vars: 2, OpsPerProc: 3, SyncFraction: 4}, 2)
	p.Cond = &program.Cond{}
	cn := canonicalize(p)
	if cn.inv != nil || cn.addr != nil {
		t.Fatal("postcondition program was canonically renamed")
	}
	res := mem.Result{
		Reads: map[mem.OpID]mem.ReadObservation{
			{Proc: 1, Index: 0}: {ID: mem.OpID{Proc: 1, Index: 0}, Addr: 7, Value: 3},
		},
		Final: map[mem.Addr]mem.Value{7: 3},
	}
	if got, want := cn.key(res), res.Key(); got != want {
		t.Fatalf("identity renaming altered the key: %q vs %q", got, want)
	}
}
