package check

import (
	"testing"

	"weakorder/internal/gen"
	"weakorder/internal/ideal"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// isoCopy builds an isomorphic copy of p: threads rotated by one
// position and every address mapped through a bijection, with symbols
// and names scrambled (they are cosmetic). A postcondition, if present,
// is mapped through the same thread rotation and address bijection.
func isoCopy(p *program.Program) *program.Program {
	remap := func(a mem.Addr) mem.Addr { return a*3 + 11 }
	n := len(p.Threads)
	q := &program.Program{
		Name:    p.Name + "-iso",
		Threads: make([]program.Thread, n),
		Init:    make(map[mem.Addr]mem.Value, len(p.Init)),
		Symbols: make(map[string]mem.Addr, len(p.Symbols)),
	}
	for i := range p.Threads {
		src := p.Threads[(i+1)%n]
		th := program.Thread{Name: src.Name + "x", Instrs: make([]program.Instr, len(src.Instrs))}
		copy(th.Instrs, src.Instrs)
		for j := range th.Instrs {
			if th.Instrs[j].Op.IsMemory() {
				th.Instrs[j].Addr = remap(th.Instrs[j].Addr)
				th.Instrs[j].Sym = ""
			}
		}
		q.Threads[i] = th
	}
	for a, v := range p.Init {
		q.Init[remap(a)] = v
	}
	for s, a := range p.Symbols {
		q.Symbols[s+"x"] = remap(a)
	}
	if p.Cond != nil {
		q.Cond = &program.Cond{Terms: make([]program.CondTerm, len(p.Cond.Terms))}
		for i, t := range p.Cond.Terms {
			if t.Thread >= 0 {
				t.Thread = (t.Thread - 1 + n) % n // original thread j lands at copy position j-1
			} else {
				t.Addr = remap(t.Addr)
				t.Sym = ""
			}
			q.Cond.Terms[i] = t
		}
	}
	return q
}

// enumerateCanonKeys collects a program's full SC outcome set in
// canonical coordinates.
func enumerateCanonKeys(t *testing.T, p *program.Program, cn canon) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	if _, err := ideal.Enumerate(p, oracleEnumConfig(), func(it *ideal.Interp) error {
		out[cn.key(mem.ResultOf(it.Execution()))] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// withCond attaches a postcondition mixing register and memory terms.
func withCond(p *program.Program, terms ...program.CondTerm) *program.Program {
	p.Cond = &program.Cond{Terms: terms}
	return p
}

// symmetricProgram builds a 5-thread program with two identical-body
// writer pairs (x and y share an address class, so all four writers
// share a signature) plus a distinct reader: the canonical order is only
// reachable through the within-group permutation search.
func symmetricProgram() *program.Program {
	b := program.NewBuilder("symmetric5")
	x, y := b.Var("x"), b.Var("y")
	b.Thread().StoreImm(x, 1)
	b.Thread().StoreImm(x, 2)
	b.Thread().StoreImm(y, 1)
	b.Thread().StoreImm(y, 2)
	b.Thread().Load(program.R0, x).Load(program.R1, y)
	return b.MustBuild()
}

// Isomorphic programs (threads permuted, addresses renamed, any
// postcondition mapped alongside) must share a canonical hash, and their
// SC outcome sets must coincide exactly in canonical coordinates — that
// is the property the shared oracle entry relies on for soundness. The
// suite spans 2 through 8 threads: the signature refinement must neither
// fall back at campaign-and-beyond thread counts nor be confused by
// symmetric (identical-body) thread groups. Outcome sets are compared
// where enumeration is tractable; at 6-8 threads the hash and renaming
// are the assertion.
func TestCanonicalizationMergesIsomorphicPrograms(t *testing.T) {
	type tc struct {
		p     *program.Program
		compr bool // compare full canonical outcome sets
	}
	racy := func(procs, vars, ops int, seed int64) *program.Program {
		return gen.Racy(gen.RacyConfig{Procs: procs, Vars: vars, OpsPerProc: ops, SyncFraction: 4}, seed)
	}
	condProg := racy(2, 2, 3, 5)
	xAddr := condProg.Threads[0].Instrs[0].Addr
	cases := []tc{
		{racy(2, 3, 4, 9), true},
		{gen.RaceFree(gen.RaceFreeConfig{
			Procs: 2, Locks: 1, SharedPerLock: 2, PrivatePerProc: 1,
			Sections: 1, OpsPerSection: 2, PrivateOps: 1,
		}, 3), true},
		{racy(3, 2, 3, 21), true},
		{symmetricProgram(), true},
		{withCond(condProg,
			program.CondTerm{Thread: 0, Reg: program.R0, Value: 1},
			program.CondTerm{Thread: 1, Reg: program.R1, Value: 0},
			program.CondTerm{Thread: -1, Addr: xAddr, Value: 1},
		), true},
		{racy(5, 3, 3, 13), false},
		{racy(6, 4, 2, 17), false},
		{racy(8, 4, 2, 29), false},
	}
	for _, c := range cases {
		p := c.p
		q := isoCopy(p)
		cnP, cnQ := canonicalize(p), canonicalize(q)
		if cnP.inv == nil {
			t.Fatalf("%s (%d threads): campaign-shaped program fell back to the raw hash", p.Name, p.NumThreads())
		}
		if cnP.hash != cnQ.hash {
			t.Fatalf("%s (%d threads): isomorphic copy hashed differently:\n p %s\n q %s",
				p.Name, p.NumThreads(), cnP.hash, cnQ.hash)
		}
		if !c.compr {
			continue
		}
		keysP := enumerateCanonKeys(t, p, cnP)
		keysQ := enumerateCanonKeys(t, q, cnQ)
		if len(keysP) != len(keysQ) {
			t.Fatalf("%s: canonical outcome sets differ in size: %d vs %d", p.Name, len(keysP), len(keysQ))
		}
		for k := range keysP {
			if !keysQ[k] {
				t.Fatalf("%s: canonical outcome %q missing from isomorphic copy's set", p.Name, k)
			}
		}
	}
}

// Distinct programs must not collide: changing one immediate changes the
// canonical hash.
func TestCanonicalizationSeparatesDistinctPrograms(t *testing.T) {
	p := gen.Racy(gen.RacyConfig{Procs: 2, Vars: 3, OpsPerProc: 4, SyncFraction: 4}, 9)
	q := isoCopy(p)
	for i := range q.Threads[0].Instrs {
		in := &q.Threads[0].Instrs[i]
		if in.UseImm || in.Op == program.OpLoadImm {
			in.Imm++
			break
		}
	}
	if canonicalize(p).hash == canonicalize(q).hash {
		t.Fatal("programs differing in an immediate share a canonical hash")
	}
}

// Programs carrying a litmus postcondition canonicalize like any other:
// the Cond rides along in canonical coordinates instead of forcing the
// raw-hash fallback, while any Cond difference — extra term, different
// expected value, or no Cond at all — separates the hashes.
func TestCanonicalizationCanonicalizesPostconditions(t *testing.T) {
	mk := func() *program.Program {
		return gen.Racy(gen.RacyConfig{Procs: 2, Vars: 2, OpsPerProc: 3, SyncFraction: 4}, 2)
	}
	bare := mk()
	p := withCond(mk(), program.CondTerm{Thread: 0, Reg: program.R0, Value: 1})
	cn := canonicalize(p)
	if cn.inv == nil || cn.addr == nil {
		t.Fatal("postcondition program fell back to the raw hash")
	}
	if cn.hash == canonicalize(bare).hash {
		t.Error("postconditioned program shares a hash with its bare twin")
	}
	q := withCond(mk(), program.CondTerm{Thread: 0, Reg: program.R0, Value: 2})
	if cn.hash == canonicalize(q).hash {
		t.Error("programs differing only in the Cond value share a canonical hash")
	}
	r := withCond(mk(),
		program.CondTerm{Thread: 0, Reg: program.R0, Value: 1},
		program.CondTerm{Thread: 1, Reg: program.R0, Value: 0},
	)
	if cn.hash == canonicalize(r).hash {
		t.Error("programs differing in a Cond term share a canonical hash")
	}
}
