package check

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// journalCodeHash names the current generation of outcome-affecting
// checker code. It is folded into the campaign identity so a journal
// written by an older build — whose journaled outcomes a newer build
// would not reproduce — is rejected on resume instead of silently
// merged. Bump it whenever generators, oracles, shrinking, or the
// progOutcome encoding change observable results.
const journalCodeHash = "check-v9" // v9: procs/topology/dirmode campaign axes

// journalMagic identifies the file format, independent of campaign
// identity.
const journalMagic = "wo-campaign-journal-1"

// journalHeader is the first line of every journal. It pins the
// campaign identity: resuming under a different configuration would
// merge outcomes from two different experiments into one Summary.
type journalHeader struct {
	Magic    string `json:"magic"`
	Identity string `json:"identity"`
}

// journalRecord is one completed program's outcome. Sum is the IEEE
// CRC-32 of the Out payload mixed with the index; a torn or bit-flipped
// record fails the check and truncates the resume scan at that point.
type journalRecord struct {
	Idx int             `json:"idx"`
	Sum uint32          `json:"sum"`
	Out json.RawMessage `json:"out"`
}

func recordSum(idx int, out []byte) uint32 {
	h := crc32.NewIEEE()
	fmt.Fprintf(h, "%d:", idx)
	h.Write(out)
	return h.Sum32()
}

// identity hashes every campaign parameter that determines per-program
// outcomes. Workers, Progress, Logf, CorpusDir, and the journal fields
// themselves are deliberately excluded — a journal written with 8
// workers must resume under 1 (the Summary is worker-count-invariant).
// The test-only Fault hook cannot be hashed and is likewise excluded;
// tests that inject faults must keep the hook stable across resume.
func (c *campaign) identity() string {
	type topoDesc struct {
		Name   string `json:"name"`
		Caches bool   `json:"caches"`
	}
	id := struct {
		Code           string        `json:"code"`
		Seed           int64         `json:"seed"`
		Programs       int           `json:"programs"`
		SeedsPerConfig int           `json:"seedsPerConfig"`
		MaxShrinkTries int           `json:"maxShrinkTries"`
		CheckDeadline  time.Duration `json:"checkDeadline"`
		NoSatFast      bool          `json:"noSatFast"`
		Procs          int           `json:"procs"`
		DirMode        string        `json:"dirMode"`
		Matrix         []topoDesc    `json:"matrix"`
		Faults         string        `json:"faults"`
	}{
		Code:           journalCodeHash,
		Seed:           c.cfg.Seed,
		Programs:       c.cfg.Programs,
		SeedsPerConfig: c.cfg.SeedsPerConfig,
		MaxShrinkTries: c.cfg.MaxShrinkTries,
		CheckDeadline:  c.cfg.CheckDeadline,
		NoSatFast:      c.cfg.NoSatFast,
		Procs:          c.cfg.Procs,
		DirMode:        c.cfg.DirMode.String(),
	}
	for _, mcfg := range c.matrix {
		id.Matrix = append(id.Matrix, topoDesc{Name: mcfg.Name(), Caches: mcfg.Caches})
	}
	if c.cfg.Faults != nil {
		id.Faults = fmt.Sprintf("%+v", *c.cfg.Faults)
	}
	b, err := json.Marshal(id)
	if err != nil {
		panic(fmt.Sprintf("check: marshal campaign identity: %v", err)) // all fields are marshalable
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

// journal is the append-only campaign progress log. Appends are
// serialized by a mutex (workers complete programs concurrently) and
// each record is fsynced before append returns, so a record's presence
// in the journal means the outcome survives a crash at any later point.
type journal struct {
	mu sync.Mutex
	f  *os.File
	// onAppend, when non-nil, is invoked after each record is durably
	// appended (journal-position reporting for the control plane). Set
	// before the campaign starts; never called concurrently with itself.
	onAppend func()
}

// openJournal opens the campaign journal at path. Without resume the
// file is truncated and a fresh header written. With resume, an existing
// file's header must match identity, and every valid record is returned
// as the done map; the scan stops at the first torn or corrupt record,
// truncating the file there so subsequent appends extend a known-good
// prefix. A missing or empty file resumes to an empty done map.
func openJournal(path, identity string, resume bool) (*journal, map[int]progOutcome, error) {
	flags := os.O_RDWR | os.O_CREATE
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("check: open journal: %w", err)
	}
	j := &journal{f: f}
	done := make(map[int]progOutcome)

	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("check: stat journal: %w", err)
	}
	if st.Size() == 0 {
		if err := j.writeHeader(identity); err != nil {
			f.Close()
			return nil, nil, err
		}
		return j, done, nil
	}

	// Resume scan. Track the byte offset of each good line so the file
	// can be truncated exactly at the first bad one.
	r := bufio.NewReader(f)
	var offset int64
	line, err := r.ReadBytes('\n')
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("check: journal %s: unreadable header: %w", path, err)
	}
	var hdr journalHeader
	if jerr := json.Unmarshal(line, &hdr); jerr != nil || hdr.Magic != journalMagic {
		f.Close()
		return nil, nil, fmt.Errorf("check: journal %s: not a campaign journal", path)
	}
	if hdr.Identity != identity {
		f.Close()
		return nil, nil, fmt.Errorf("check: journal %s: campaign identity mismatch (journal %.12s…, config %.12s…): refusing to merge outcomes from a different campaign",
			path, hdr.Identity, identity)
	}
	offset += int64(len(line))

	torn := false
	for {
		line, err = r.ReadBytes('\n')
		if err == io.EOF {
			// A partial final line (no trailing newline) is a torn write.
			torn = len(line) > 0
			break
		}
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("check: read journal: %w", err)
		}
		var rec journalRecord
		if json.Unmarshal(bytes.TrimSpace(line), &rec) != nil ||
			rec.Sum != recordSum(rec.Idx, rec.Out) {
			torn = true
			break
		}
		var out progOutcome
		if json.Unmarshal(rec.Out, &out) != nil {
			torn = true
			break
		}
		done[rec.Idx] = out
		offset += int64(len(line))
	}
	if torn {
		// Drop the torn tail: appends must extend a verified prefix, and
		// the dropped program simply gets re-checked.
		if err := f.Truncate(offset); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("check: truncate torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("check: seek journal: %w", err)
	}
	return j, done, nil
}

func (j *journal) writeHeader(identity string) error {
	b, err := json.Marshal(journalHeader{Magic: journalMagic, Identity: identity})
	if err != nil {
		return fmt.Errorf("check: marshal journal header: %w", err)
	}
	b = append(b, '\n')
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("check: write journal header: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("check: sync journal: %w", err)
	}
	return nil
}

// append journals one completed program. The record is written in a
// single Write call and fsynced before return: once append returns, a
// resume after any crash will see this outcome.
func (j *journal) append(idx int, out progOutcome) error {
	payload, err := json.Marshal(out)
	if err != nil {
		return fmt.Errorf("check: marshal journal record: %w", err)
	}
	rec := journalRecord{Idx: idx, Sum: recordSum(idx, payload), Out: payload}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("check: marshal journal record: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("check: append journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("check: sync journal: %w", err)
	}
	if j.onAppend != nil {
		j.onAppend()
	}
	return nil
}

// Close syncs and closes the journal file.
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
