#!/usr/bin/env sh
# bench.sh — run the oracle & kernel benchmark set and emit BENCH_oracle.json.
#
# Usage:
#   scripts/bench.sh [-benchtime 2s] [-o BENCH_oracle.json] [-baseline FILE]
#
# The benchmark set covers the hot paths reworked by the POR oracle and
# simulation-kernel overhaul: the differential campaign, the fault-injection
# matrix, the SC enumeration/matching oracles, the DRF0 checker, and the
# axiomatic candidate-execution engine. Output is
# a JSON document mapping benchmark names to their measured metrics (ns/op
# plus any benchmark-reported extras such as steps/op or sims/op).
#
# With -baseline FILE, the contents of FILE (a previous run of this script,
# typically produced on the pre-change commit in a worktree) are embedded
# under "baseline" so before/after numbers travel in one committed artifact.
#
# CI runs this with -benchtime 1x as a smoke (one iteration per benchmark,
# timing meaningless but regressions in *correctness* of the bench set are
# caught); for numbers worth reading use -benchtime 2s or longer on an idle
# machine.
set -eu

BENCHTIME=1x
OUT=BENCH_oracle.json
BASELINE=
BENCHSET='BenchmarkCheckCampaign|BenchmarkFaultMatrix$|BenchmarkMachineReuse|BenchmarkMachineStep|BenchmarkIdealEnumerateDekker|BenchmarkIdealEnumeratePOR|BenchmarkSCMatchOracle|BenchmarkSatFastPath|BenchmarkDRF0CheckGenerated|BenchmarkAxiomSC'

while [ $# -gt 0 ]; do
    case "$1" in
    -benchtime) BENCHTIME=$2; shift 2 ;;
    -o) OUT=$2; shift 2 ;;
    -baseline) BASELINE=$2; shift 2 ;;
    -benchset) BENCHSET=$2; shift 2 ;;
    *) echo "usage: $0 [-benchtime T] [-o FILE] [-baseline FILE] [-benchset REGEX]" >&2; exit 2 ;;
    esac
done

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# -benchmem adds B/op and allocs/op; the parser below records every
# reported metric pair, so allocation figures land in the JSON schema
# alongside ns/op without special-casing.
go test -run '^$' -bench "$BENCHSET" -benchtime "$BENCHTIME" -benchmem -count 1 . | tee "$RAW" >&2

COMMIT=$(git describe --always --dirty 2>/dev/null || echo unknown)

awk -v benchtime="$BENCHTIME" -v commit="$COMMIT" -v baseline="$BASELINE" '
function jesc(s) { gsub(/\\/, "\\\\", s); gsub(/"/, "\\\"", s); return s }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; iters = $2
    metrics = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        if (metrics != "") metrics = metrics ", "
        metrics = metrics "\"" jesc($(i + 1)) "\": " $i
    }
    if (results != "") results = results ",\n"
    results = results sprintf("    \"%s\": {\"iterations\": %s, %s}", jesc(name), iters, metrics)
}
END {
    printf "{\n"
    printf "  \"schema\": \"wofuzz-bench/1\",\n"
    printf "  \"commit\": \"%s\",\n", jesc(commit)
    printf "  \"benchtime\": \"%s\",\n", jesc(benchtime)
    printf "  \"goos\": \"%s\",\n", jesc(goos)
    printf "  \"goarch\": \"%s\",\n", jesc(goarch)
    printf "  \"cpu\": \"%s\",\n", jesc(cpu)
    printf "  \"results\": {\n%s\n  }", results
    if (baseline != "") {
        printf ",\n  \"baseline\": "
        first = 1
        while ((getline line < baseline) > 0) {
            if (!first) printf "\n  "
            printf "%s", line
            first = 0
        }
        close(baseline)
    }
    printf "\n}\n"
}
' "$RAW" >"$OUT"

echo "wrote $OUT" >&2
