// Command benchgate compares a fresh bench.sh run against the committed
// BENCH_oracle.json and fails when a watched benchmark regresses beyond
// a ratio. CI uses it as a coarse performance tripwire: shared runners
// are noisy, so the default threshold is deliberately generous (2x) —
// it exists to catch "the pooled hot path started allocating again"
// scale regressions, not single-digit-percent drift.
//
// Usage:
//
//	benchgate -current bench-gate.json -baseline BENCH_oracle.json \
//	    -bench BenchmarkCheckCampaign/workers4 [-metric ns/op] [-max-ratio 2.0]
//
// -bench may repeat. A benchmark missing from the baseline is skipped
// with a note (new benchmarks have no reference yet); missing from the
// current run is an error (the bench set broke).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type benchFile struct {
	Commit  string                        `json:"commit"`
	Results map[string]map[string]float64 `json:"results"`
}

type benchList []string

func (b *benchList) String() string     { return fmt.Sprint(*b) }
func (b *benchList) Set(s string) error { *b = append(*b, s); return nil }

func main() {
	var (
		currentPath  = flag.String("current", "", "bench.sh JSON for the tree under test")
		baselinePath = flag.String("baseline", "BENCH_oracle.json", "committed reference JSON")
		metric       = flag.String("metric", "ns/op", "metric to compare")
		maxRatio     = flag.Float64("max-ratio", 2.0, "fail when current/baseline exceeds this")
		benches      benchList
	)
	flag.Var(&benches, "bench", "benchmark name to gate (repeatable)")
	flag.Parse()
	if *currentPath == "" || len(benches) == 0 {
		fatal(fmt.Errorf("usage: benchgate -current FILE [-baseline FILE] -bench NAME [-bench NAME...]"))
	}
	current, err := load(*currentPath)
	if err != nil {
		fatal(err)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	failed := false
	for _, name := range benches {
		cur, ok := current.Results[name]
		if !ok {
			fatal(fmt.Errorf("%s: missing from current run %s", name, *currentPath))
		}
		base, ok := baseline.Results[name]
		if !ok {
			fmt.Printf("SKIP %s: not in baseline (commit %s)\n", name, baseline.Commit)
			continue
		}
		cv, ok := cur[*metric]
		if !ok {
			fatal(fmt.Errorf("%s: current run lacks metric %q", name, *metric))
		}
		bv, ok := base[*metric]
		if !ok || bv <= 0 {
			fmt.Printf("SKIP %s: baseline lacks usable %q\n", name, *metric)
			continue
		}
		ratio := cv / bv
		status := "ok"
		if ratio > *maxRatio {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-4s %s: %s %.0f vs baseline %.0f (%.2fx, limit %.2fx)\n",
			status, name, *metric, cv, bv, ratio, *maxRatio)
	}
	if failed {
		os.Exit(1)
	}
}

func load(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
