// Command checktelemetry validates the schema of the telemetry the
// tools export — the metrics snapshot JSON (wosim -metrics), the Chrome
// trace_event timeline (wosim -timeline), and Prometheus text exposition
// (wofuzz -listen's /metrics endpoint) — so CI catches exporter drift
// without pinning every counter value.
//
// Usage:
//
//	checktelemetry -metrics run.json -timeline trace.json
//	checktelemetry -prom scrape.txt -require weakorder_campaign_programs
//
// Every flag may be omitted (but at least one input is required); the
// command exits non-zero on the first schema violation, naming the
// offending line or field. -require may repeat; each names a metric
// family that must be present in the -prom input.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// stringList is a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }

func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var (
		metricsPath  = flag.String("metrics", "", "metrics snapshot JSON to validate")
		timelinePath = flag.String("timeline", "", "Chrome trace_event JSON to validate")
		promPath     = flag.String("prom", "", "Prometheus text exposition to validate (a /metrics scrape)")
		require      stringList
	)
	flag.Var(&require, "require", "metric family that must appear in -prom (repeatable)")
	flag.Parse()
	if *metricsPath == "" && *timelinePath == "" && *promPath == "" {
		fatal(fmt.Errorf("nothing to check: pass -metrics, -timeline, and/or -prom"))
	}
	if len(require) > 0 && *promPath == "" {
		fatal(fmt.Errorf("-require needs -prom"))
	}
	if *promPath != "" {
		if err := checkProm(*promPath, require); err != nil {
			fatal(fmt.Errorf("%s: %w", *promPath, err))
		}
		fmt.Printf("checktelemetry: %s ok\n", *promPath)
	}
	if *metricsPath != "" {
		if err := checkMetrics(*metricsPath); err != nil {
			fatal(fmt.Errorf("%s: %w", *metricsPath, err))
		}
		fmt.Printf("checktelemetry: %s ok\n", *metricsPath)
	}
	if *timelinePath != "" {
		if err := checkTimeline(*timelinePath); err != nil {
			fatal(fmt.Errorf("%s: %w", *timelinePath, err))
		}
		fmt.Printf("checktelemetry: %s ok\n", *timelinePath)
	}
}

// snapshot mirrors metrics.Snapshot structurally, so the schema check
// also guards the exported field names against accidental renames.
type snapshot struct {
	Counters map[string]uint64 `json:"counters"`
	Gauges   map[string]struct {
		Value int64 `json:"value"`
		Max   int64 `json:"max"`
	} `json:"gauges"`
	Histograms map[string]struct {
		Bounds []uint64 `json:"Bounds"`
		Counts []uint64 `json:"Counts"`
		Count  uint64   `json:"Count"`
		Sum    uint64   `json:"Sum"`
	} `json:"histograms"`
}

// checkMetrics validates the snapshot: the three sections must be
// present, histograms must be internally consistent, and the counters a
// simulation always publishes must exist.
func checkMetrics(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s snapshot
	if err := dec.Decode(&s); err != nil {
		return err
	}
	if s.Counters == nil || s.Gauges == nil || s.Histograms == nil {
		return fmt.Errorf("missing counters/gauges/histograms section")
	}
	for _, want := range []string{"machine.cycles", "cpu.0.stall_total", "cpu.0.mem_ops"} {
		if _, ok := s.Counters[want]; !ok {
			return fmt.Errorf("required counter %q absent", want)
		}
	}
	for name, h := range s.Histograms {
		if len(h.Bounds) == 0 {
			return fmt.Errorf("histogram %q has no bounds", name)
		}
		if len(h.Counts) != len(h.Bounds)+1 {
			return fmt.Errorf("histogram %q: %d counts for %d bounds (want bounds+1)",
				name, len(h.Counts), len(h.Bounds))
		}
		var total uint64
		for _, c := range h.Counts {
			total += c
		}
		if total != h.Count {
			return fmt.Errorf("histogram %q: bucket sum %d != count %d", name, total, h.Count)
		}
		for i := 1; i < len(h.Bounds); i++ {
			if h.Bounds[i] <= h.Bounds[i-1] {
				return fmt.Errorf("histogram %q: bounds not strictly increasing at %d", name, i)
			}
		}
	}
	return nil
}

// traceEvent is the subset of the Chrome trace_event schema the exporter
// emits: metadata ("M"), complete spans ("X"), and instants ("i").
type traceEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   uint64          `json:"ts"`
	Dur  *uint64         `json:"dur"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	S    string          `json:"s"`
	Cat  string          `json:"cat"`
	Args json.RawMessage `json:"args"`
}

// checkTimeline validates the trace: every event carries a legal phase,
// "X" events carry durations, and every span/instant refers to a thread
// named by a metadata event.
func checkTimeline(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return err
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("no traceEvents")
	}
	named := make(map[int]bool)
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name != "thread_name" {
				return fmt.Errorf("event %d: metadata named %q (want thread_name)", i, e.Name)
			}
			named[e.Tid] = true
		case "X":
			if e.Dur == nil {
				return fmt.Errorf("event %d (%q): complete event without dur", i, e.Name)
			}
			if !named[e.Tid] {
				return fmt.Errorf("event %d (%q): span on unnamed tid %d", i, e.Name, e.Tid)
			}
		case "i":
			if !named[e.Tid] {
				return fmt.Errorf("event %d (%q): instant on unnamed tid %d", i, e.Name, e.Tid)
			}
		default:
			return fmt.Errorf("event %d (%q): unexpected phase %q", i, e.Name, e.Ph)
		}
		if e.Name == "" {
			return fmt.Errorf("event %d: empty name", i)
		}
		if e.Pid != 1 {
			return fmt.Errorf("event %d (%q): pid %d (exporter always emits 1)", i, e.Name, e.Pid)
		}
	}
	return nil
}

// checkProm validates Prometheus text exposition (version 0.0.4), the
// format the wofuzz control plane serves at /metrics: comment grammar,
// one # TYPE per family with every sample under its declaration, metric
// and label name grammar, escape-correct label values, parseable sample
// values, and complete histogram families (+Inf bucket, _count, _sum).
// Each name in require must appear as a family.
func checkProm(path string, require []string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	typed := make(map[string]string) // family -> declared type
	families := make(map[string]bool)
	histBuckets := make(map[string]bool) // histogram family -> saw le="+Inf"
	histParts := make(map[string]int)    // histogram family -> _count|_sum bitmask
	current := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if line == "" {
			return fmt.Errorf("line %d: empty line in exposition output", ln)
		}
		if strings.HasPrefix(line, "#") {
			kind, name, arg, err := parsePromComment(line)
			if err != nil {
				return fmt.Errorf("line %d: %w", ln, err)
			}
			if kind == "HELP" {
				continue
			}
			if _, dup := typed[name]; dup {
				return fmt.Errorf("line %d: duplicate # TYPE for %q", ln, name)
			}
			switch arg {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", ln, arg)
			}
			typed[name] = arg
			families[name] = true
			current = name
			continue
		}
		name, labels, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", ln, err)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count"), "_max")
		if name != current && base != current {
			return fmt.Errorf("line %d: sample %q not under its # TYPE (current %q)", ln, name, current)
		}
		if typed[current] == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if labels["le"] == "" {
					return fmt.Errorf("line %d: histogram bucket without le label", ln)
				}
				if labels["le"] == "+Inf" {
					histBuckets[current] = true
				}
			case strings.HasSuffix(name, "_count"):
				histParts[current] |= 1
			case strings.HasSuffix(name, "_sum"):
				histParts[current] |= 2
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(families) == 0 {
		return fmt.Errorf("no metric families found")
	}
	for fam, typ := range typed {
		if typ != "histogram" {
			continue
		}
		if !histBuckets[fam] {
			return fmt.Errorf("histogram %q has no +Inf bucket", fam)
		}
		if histParts[fam] != 3 {
			return fmt.Errorf("histogram %q missing _count or _sum", fam)
		}
	}
	for _, want := range require {
		if !families[want] {
			return fmt.Errorf("required metric family %q absent", want)
		}
	}
	return nil
}

// parsePromComment validates a "# HELP name ..." or "# TYPE name kind"
// line and returns the kind of comment, the family name, and (for TYPE)
// the metric type.
func parsePromComment(line string) (kind, name, arg string, err error) {
	rest, ok := strings.CutPrefix(line, "# ")
	if !ok {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	fields := strings.SplitN(rest, " ", 3)
	if len(fields) < 3 || (fields[0] != "TYPE" && fields[0] != "HELP") {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	if !validPromName(fields[1], false) {
		return "", "", "", fmt.Errorf("invalid metric name %q", fields[1])
	}
	return fields[0], fields[1], fields[2], nil
}

// parsePromSample validates one sample line and returns the metric name
// and its labels.
func parsePromSample(line string) (string, map[string]string, error) {
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return "", nil, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:nameEnd]
	if !validPromName(name, false) {
		return "", nil, fmt.Errorf("invalid metric name %q", name)
	}
	labels := make(map[string]string)
	rest := line[nameEnd:]
	if rest[0] == '{' {
		var err error
		rest, err = parsePromLabels(rest[1:], labels)
		if err != nil {
			return "", nil, fmt.Errorf("sample %q: %w", line, err)
		}
	}
	val := strings.TrimPrefix(rest, " ")
	// A trailing timestamp is legal; the value is the first field.
	if i := strings.IndexByte(val, ' '); i >= 0 {
		if _, err := strconv.ParseInt(val[i+1:], 10, 64); err != nil {
			return "", nil, fmt.Errorf("sample %q: bad timestamp", line)
		}
		val = val[:i]
	}
	if _, err := strconv.ParseFloat(val, 64); err != nil && val != "+Inf" && val != "-Inf" && val != "NaN" {
		return "", nil, fmt.Errorf("sample %q: unparseable value %q", line, val)
	}
	return name, labels, nil
}

// parsePromLabels consumes `k="v",...}` (the opening brace already
// stripped), fills labels, and returns the remainder of the line.
func parsePromLabels(s string, labels map[string]string) (string, error) {
	for {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || !validPromName(s[:eq], true) {
			return "", fmt.Errorf("bad label name in %q", s)
		}
		key := s[:eq]
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return "", fmt.Errorf("unquoted label value for %q", key)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if len(s) == 0 {
				return "", fmt.Errorf("unterminated label value for %q", key)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if len(s) == 0 {
					return "", fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[0] {
				case '\\', '"':
					val.WriteByte(s[0])
				case 'n':
					val.WriteByte('\n')
				default:
					return "", fmt.Errorf("illegal escape \\%c in label %q", s[0], key)
				}
				s = s[1:]
				continue
			}
			if c == '\n' {
				return "", fmt.Errorf("raw newline in label %q", key)
			}
			val.WriteByte(c)
		}
		if _, dup := labels[key]; dup {
			return "", fmt.Errorf("duplicate label %q", key)
		}
		labels[key] = val.String()
		if len(s) == 0 {
			return "", fmt.Errorf("unterminated label block")
		}
		switch s[0] {
		case ',':
			s = s[1:]
		case '}':
			return s[1:], nil
		default:
			return "", fmt.Errorf("junk %q after label %q", s[0], key)
		}
	}
}

// validPromName reports whether s is a legal metric (or, when label is
// true, label) name: [a-zA-Z_:][a-zA-Z0-9_:]*, colons excluded for
// labels, and no leading __ for labels (reserved).
func validPromName(s string, label bool) bool {
	if s == "" {
		return false
	}
	if label && strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c == ':' && !label:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "checktelemetry:", err)
	os.Exit(1)
}
