// Command checktelemetry validates the schema of the telemetry files the
// simulator exports — the metrics snapshot JSON (wosim -metrics) and the
// Chrome trace_event timeline (wosim -timeline) — so CI catches exporter
// drift without pinning every counter value.
//
// Usage:
//
//	checktelemetry -metrics run.json -timeline trace.json
//
// Either flag may be omitted; the command exits non-zero on the first
// schema violation, naming the offending field.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		metricsPath  = flag.String("metrics", "", "metrics snapshot JSON to validate")
		timelinePath = flag.String("timeline", "", "Chrome trace_event JSON to validate")
	)
	flag.Parse()
	if *metricsPath == "" && *timelinePath == "" {
		fatal(fmt.Errorf("nothing to check: pass -metrics and/or -timeline"))
	}
	if *metricsPath != "" {
		if err := checkMetrics(*metricsPath); err != nil {
			fatal(fmt.Errorf("%s: %w", *metricsPath, err))
		}
		fmt.Printf("checktelemetry: %s ok\n", *metricsPath)
	}
	if *timelinePath != "" {
		if err := checkTimeline(*timelinePath); err != nil {
			fatal(fmt.Errorf("%s: %w", *timelinePath, err))
		}
		fmt.Printf("checktelemetry: %s ok\n", *timelinePath)
	}
}

// snapshot mirrors metrics.Snapshot structurally, so the schema check
// also guards the exported field names against accidental renames.
type snapshot struct {
	Counters map[string]uint64 `json:"counters"`
	Gauges   map[string]struct {
		Value int64 `json:"value"`
		Max   int64 `json:"max"`
	} `json:"gauges"`
	Histograms map[string]struct {
		Bounds []uint64 `json:"Bounds"`
		Counts []uint64 `json:"Counts"`
		Count  uint64   `json:"Count"`
		Sum    uint64   `json:"Sum"`
	} `json:"histograms"`
}

// checkMetrics validates the snapshot: the three sections must be
// present, histograms must be internally consistent, and the counters a
// simulation always publishes must exist.
func checkMetrics(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s snapshot
	if err := dec.Decode(&s); err != nil {
		return err
	}
	if s.Counters == nil || s.Gauges == nil || s.Histograms == nil {
		return fmt.Errorf("missing counters/gauges/histograms section")
	}
	for _, want := range []string{"machine.cycles", "cpu.0.stall_total", "cpu.0.mem_ops"} {
		if _, ok := s.Counters[want]; !ok {
			return fmt.Errorf("required counter %q absent", want)
		}
	}
	for name, h := range s.Histograms {
		if len(h.Bounds) == 0 {
			return fmt.Errorf("histogram %q has no bounds", name)
		}
		if len(h.Counts) != len(h.Bounds)+1 {
			return fmt.Errorf("histogram %q: %d counts for %d bounds (want bounds+1)",
				name, len(h.Counts), len(h.Bounds))
		}
		var total uint64
		for _, c := range h.Counts {
			total += c
		}
		if total != h.Count {
			return fmt.Errorf("histogram %q: bucket sum %d != count %d", name, total, h.Count)
		}
		for i := 1; i < len(h.Bounds); i++ {
			if h.Bounds[i] <= h.Bounds[i-1] {
				return fmt.Errorf("histogram %q: bounds not strictly increasing at %d", name, i)
			}
		}
	}
	return nil
}

// traceEvent is the subset of the Chrome trace_event schema the exporter
// emits: metadata ("M"), complete spans ("X"), and instants ("i").
type traceEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   uint64          `json:"ts"`
	Dur  *uint64         `json:"dur"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	S    string          `json:"s"`
	Cat  string          `json:"cat"`
	Args json.RawMessage `json:"args"`
}

// checkTimeline validates the trace: every event carries a legal phase,
// "X" events carry durations, and every span/instant refers to a thread
// named by a metadata event.
func checkTimeline(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return err
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("no traceEvents")
	}
	named := make(map[int]bool)
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name != "thread_name" {
				return fmt.Errorf("event %d: metadata named %q (want thread_name)", i, e.Name)
			}
			named[e.Tid] = true
		case "X":
			if e.Dur == nil {
				return fmt.Errorf("event %d (%q): complete event without dur", i, e.Name)
			}
			if !named[e.Tid] {
				return fmt.Errorf("event %d (%q): span on unnamed tid %d", i, e.Name, e.Tid)
			}
		case "i":
			if !named[e.Tid] {
				return fmt.Errorf("event %d (%q): instant on unnamed tid %d", i, e.Name, e.Tid)
			}
		default:
			return fmt.Errorf("event %d (%q): unexpected phase %q", i, e.Name, e.Ph)
		}
		if e.Name == "" {
			return fmt.Errorf("event %d: empty name", i)
		}
		if e.Pid != 1 {
			return fmt.Errorf("event %d (%q): pid %d (exporter always emits 1)", i, e.Name, e.Pid)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "checktelemetry:", err)
	os.Exit(1)
}
