package weakorder_test

import (
	"strings"
	"testing"

	"weakorder"
)

// buildMP builds the synchronized message-passing program through the
// public API.
func buildMP(t *testing.T) *weakorder.Program {
	t.Helper()
	b := weakorder.NewProgram("mp")
	data, flag := b.Var("data"), b.Var("flag")
	p0 := b.Thread()
	p0.StoreImm(data, 42)
	p0.SyncStoreImm(flag, 1)
	p1 := b.Thread()
	p1.Label("spin")
	p1.SyncLoad(weakorder.R1, flag)
	p1.BeqImm(weakorder.R1, 0, "spin")
	p1.Load(weakorder.R0, data)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestQuickstartFlow(t *testing.T) {
	prog := buildMP(t)

	v, err := weakorder.CheckDRF0(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !v.DRF {
		t.Fatalf("message passing must obey DRF0: %v", v.Races)
	}

	res, err := weakorder.Simulate(prog, weakorder.MachineConfig{
		Policy:   weakorder.WODef2,
		Topology: weakorder.Network,
		Caches:   true,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ok, witness, err := weakorder.AppearsSC(prog, res.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || witness == nil {
		t.Fatal("DRF0 program on weakly ordered hardware must appear SC")
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	prog := buildMP(t)
	text := weakorder.FormatProgram(prog)
	back, err := weakorder.ParseProgram(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if back.NumThreads() != 2 {
		t.Fatal("round trip lost threads")
	}
}

func TestEnumerateSCAndOutcomes(t *testing.T) {
	b := weakorder.NewProgram("sb")
	x, y := b.Var("x"), b.Var("y")
	p0 := b.Thread()
	p0.StoreImm(x, 1)
	p0.Load(weakorder.R0, y)
	p1 := b.Thread()
	p1.StoreImm(y, 1)
	p1.Load(weakorder.R0, x)
	prog := b.MustBuild()

	n := 0
	if err := weakorder.EnumerateSC(prog, func(e *weakorder.Execution) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("enumerated %d executions, want 6", n)
	}

	out, err := weakorder.SCOutcomes(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("distinct outcomes = %d, want 3", len(out))
	}

	// Early stop.
	n = 0
	if err := weakorder.EnumerateSC(prog, func(e *weakorder.Execution) error {
		n++
		return weakorder.StopEnumeration
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("visited %d after stop, want 1", n)
	}
}

func TestDetectRacesPublic(t *testing.T) {
	prog := buildMP(t)
	e, err := weakorder.RunSC(prog, 3)
	if err != nil {
		t.Fatal(err)
	}
	if races := weakorder.DetectRaces(e, weakorder.DRF0); len(races) != 0 {
		t.Fatalf("unexpected races: %v", races)
	}
}

func TestParsePolicyAndList(t *testing.T) {
	for _, p := range weakorder.Policies() {
		got, err := weakorder.ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
}

func TestCheckModelRefined(t *testing.T) {
	// Publication through a read-only sync op violates the refined model
	// but the orthodox acquire/release pattern does not.
	prog := buildMP(t)
	v, err := weakorder.CheckModel(prog, weakorder.DRF0RO)
	if err != nil {
		t.Fatal(err)
	}
	if !v.DRF {
		t.Fatalf("acquire/release message passing must obey the refined model: %v", v.Races)
	}
}

func TestLitmusTextEndToEnd(t *testing.T) {
	src := `
program handoff
init lock=1
thread P0 {
  st x, #5
  sst lock, #0      # release
}
thread P1 {
spin:
  tas r0, lock
  bne r0, #0, spin  # acquire
  ld r1, x
}
`
	prog, err := weakorder.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	v, err := weakorder.CheckDRF0(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !v.DRF {
		t.Fatalf("handoff must be DRF0: %v", v.Races)
	}
	for _, pol := range []weakorder.Policy{weakorder.SC, weakorder.WODef1, weakorder.WODef2, weakorder.WODef2RO} {
		cfg := weakorder.MachineConfig{Policy: pol, Topology: weakorder.Network, Caches: true}
		res, err := weakorder.Simulate(prog, cfg, 11)
		if err != nil {
			t.Fatal(err)
		}
		x, _ := prog.AddrOf("x")
		// P1's read of x must observe 5.
		found := false
		for _, op := range res.Exec.Ops {
			if op.Proc == 1 && op.Kind == weakorder.Read && op.Addr == x {
				found = true
				if op.Got != 5 {
					t.Errorf("%v: consumer read %d, want 5", pol, op.Got)
				}
			}
		}
		if !found {
			t.Errorf("%v: consumer read missing", pol)
		}
	}
}

func TestDocExampleRenders(t *testing.T) {
	prog := buildMP(t)
	if !strings.Contains(prog.String(), "sst flag") {
		t.Error("program disassembly missing sync store")
	}
}

func TestFacadeSnoopConfig(t *testing.T) {
	prog := buildMP(t)
	res, err := weakorder.Simulate(prog, weakorder.MachineConfig{
		Policy: weakorder.WODef2, Topology: weakorder.Bus, Caches: true, Snoop: true,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err := weakorder.AppearsSC(prog, res.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("snoopy machine must keep the contract")
	}
}

func TestFacadeMigration(t *testing.T) {
	prog := buildMP(t)
	res, err := weakorder.Simulate(prog, weakorder.MachineConfig{
		Policy: weakorder.WODef2, Topology: weakorder.Network, Caches: true,
		ExtraProcs: 1,
		Migrations: []weakorder.Migration{{AtCycle: 10, From: 1, To: 2}},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err := weakorder.AppearsSC(prog, res.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("migrated run must appear SC")
	}
}

func TestFacadeCondition(t *testing.T) {
	src := `
program cond
thread P0 {
  st x, #1
  ld r0, y
}
thread P1 {
  st y, #1
  ld r0, x
}
exists P0:r0=0 & P1:r0=0
`
	prog, err := weakorder.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Cond == nil {
		t.Fatal("condition not parsed")
	}
	res, err := weakorder.Simulate(prog, weakorder.MachineConfig{
		Policy: weakorder.SC, Topology: weakorder.Bus, Caches: true,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CondHolds(prog) {
		t.Error("SC machine must not satisfy the SB condition")
	}
}

func TestFacadeRefinedModes(t *testing.T) {
	prog := buildMP(t)
	for _, mode := range []weakorder.SyncMode{weakorder.DRF0, weakorder.DRF0RO, weakorder.DRF0RA} {
		v, err := weakorder.CheckModel(prog, mode)
		if err != nil {
			t.Fatal(err)
		}
		if !v.DRF {
			t.Errorf("message passing must obey %v: %v", mode, v.Races)
		}
	}
}

// TestFacadeAxiomaticModels exercises the axiomatic layer end to end
// through the public API: bundled models load, a custom model parses,
// outcome sets match the operational SCOutcomes, the drf0 race flag
// matches CheckDRF0, and the engine differential agrees.
func TestFacadeAxiomaticModels(t *testing.T) {
	prog := buildMP(t)
	if names := weakorder.ModelNames(); len(names) != 4 {
		t.Fatalf("ModelNames() = %v, want 4 bundled models", names)
	}
	sc, err := weakorder.LoadModel("sc")
	if err != nil {
		t.Fatal(err)
	}
	// mp spins, so bound both sides identically.
	cfg := weakorder.AxiomConfig{MaxMemOpsPerThread: 6}
	axOuts, st, err := weakorder.AxiomOutcomes(prog, sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Complete {
		t.Fatalf("axiomatic search incomplete: %+v", st)
	}
	if len(axOuts) == 0 {
		t.Fatal("axiomatic SC admitted no outcomes")
	}

	v, err := weakorder.AxiomCheck(prog, mustModel(t, "drf0"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v.Flags["race"] != 0 {
		t.Errorf("drf0 model flagged %d races on synchronized message passing", v.Flags["race"])
	}

	if _, err := weakorder.ParseModel("custom", "acyclic po | rf | co | fr as sc"); err != nil {
		t.Fatalf("ParseModel: %v", err)
	}

	res, err := weakorder.AxiomDiff(prog, weakorder.AxiomDiffConfig{MemOpsPerThread: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped {
		t.Fatalf("differential skipped: %s", res.SkipReason)
	}
	if !res.Agree() {
		t.Errorf("axiomatic engine disagrees with operational oracles: %s", res.String())
	}
}

func mustModel(t *testing.T, name string) *weakorder.MemoryModel {
	t.Helper()
	m, err := weakorder.LoadModel(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
