package weakorder_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weakorder"
)

// loadLitmus parses one file from testdata.
func loadLitmus(t *testing.T, name string) *weakorder.Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	p, err := weakorder.ParseProgram(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return p
}

func TestTestdataFilesAllParse(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".litmus") {
			continue
		}
		n++
		p := loadLitmus(t, e.Name())
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
		// Round trip through the formatter.
		if _, err := weakorder.ParseProgram(weakorder.FormatProgram(p)); err != nil {
			t.Errorf("%s: format round trip: %v", e.Name(), err)
		}
	}
	if n < 5 {
		t.Fatalf("only %d litmus files found", n)
	}
}

func TestTestdataSBCondition(t *testing.T) {
	p := loadLitmus(t, "sb.litmus")
	if p.Cond == nil {
		t.Fatal("sb.litmus must carry a postcondition")
	}
	// The unconstrained bus machine hits it; the SC machine never does.
	hit := false
	for seed := int64(0); seed < 5; seed++ {
		res, err := weakorder.Simulate(p, weakorder.MachineConfig{
			Policy: weakorder.Unconstrained, Topology: weakorder.Bus, Caches: true,
		}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if res.CondHolds(p) {
			hit = true
		}
		resSC, err := weakorder.Simulate(p, weakorder.MachineConfig{
			Policy: weakorder.SC, Topology: weakorder.Bus, Caches: true,
		}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if resSC.CondHolds(p) {
			t.Errorf("seed %d: SC machine satisfied the forbidden condition", seed)
		}
	}
	if !hit {
		t.Error("unconstrained machine must exhibit the SB condition")
	}
}

func TestTestdataDekkerRaces(t *testing.T) {
	p := loadLitmus(t, "dekker.litmus")
	v, err := weakorder.CheckDRF0(p)
	if err != nil {
		t.Fatal(err)
	}
	if v.DRF {
		t.Error("dekker.litmus must race")
	}
}

func TestTestdataHandoffIsDRF0AndCorrect(t *testing.T) {
	p := loadLitmus(t, "handoff.litmus")
	v, err := weakorder.CheckDRF0(p)
	if err != nil {
		t.Fatal(err)
	}
	if !v.DRF {
		t.Fatalf("handoff.litmus must obey DRF0: %v", v.Races)
	}
	res, err := weakorder.Simulate(p, weakorder.MachineConfig{
		Policy: weakorder.WODef2, Topology: weakorder.Network, Caches: true,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err := weakorder.AppearsSC(p, res.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("handoff run must appear SC")
	}
}

func TestTestdataTTASCountsToTwo(t *testing.T) {
	p := loadLitmus(t, "ttas.litmus")
	counter, ok := p.AddrOf("counter")
	if !ok {
		t.Fatal("no counter symbol")
	}
	for _, pol := range []weakorder.Policy{weakorder.WODef2, weakorder.WODef2RO} {
		res, err := weakorder.Simulate(p, weakorder.MachineConfig{
			Policy: pol, Topology: weakorder.Network, Caches: true,
		}, 9)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Exec.Final[counter]; got != 2 {
			t.Errorf("%v: counter = %d, want 2", pol, got)
		}
	}
}

func TestTestdataFencedSBNeverForbidden(t *testing.T) {
	p := loadLitmus(t, "sb-fenced.litmus")
	for _, pol := range weakorder.Policies() {
		cfg := weakorder.MachineConfig{Policy: pol, Topology: weakorder.Network, Caches: true, NetJitter: 20}
		for seed := int64(0); seed < 5; seed++ {
			res, err := weakorder.Simulate(p, cfg, seed)
			if err != nil {
				t.Fatal(err)
			}
			r0 := res.Result.Reads[weakorder.OpID{Proc: 0, Index: 1}].Value
			r1 := res.Result.Reads[weakorder.OpID{Proc: 1, Index: 1}].Value
			if r0 == 0 && r1 == 0 {
				t.Errorf("%v seed %d: fences failed", pol, seed)
			}
		}
	}
}
