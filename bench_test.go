// Benchmarks regenerating every figure and table of the reproduction
// (one benchmark family per experiment in DESIGN.md's index), plus
// microbenchmarks of the core engines. Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark logs its table once, so `-bench -v` doubles
// as a report generator; cmd/figures prints the full-size versions.
package weakorder_test

import (
	"fmt"
	"sync"
	"testing"

	"weakorder"
	"weakorder/internal/exp"
	"weakorder/internal/gen"
	"weakorder/internal/hb"
	"weakorder/internal/ideal"
	"weakorder/internal/litmus"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/sat"
	"weakorder/internal/scmatch"
	"weakorder/internal/vclock"
	"weakorder/internal/workload"
)

// logOnce logs a table on the first iteration only.
func logOnce(b *testing.B, once *sync.Once, t *exp.Table) {
	once.Do(func() { b.Log("\n" + t.String()) })
}

// ---------------------------------------------------------------------------
// Experiment regeneration benchmarks (the paper's figures + added tables).

var fig1Once sync.Once

func BenchmarkFigure1Dekker(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := exp.Figure1(6)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, &fig1Once, t)
	}
}

var fig2Once sync.Once

func BenchmarkFigure2DRF0Verdicts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t := exp.Figure2()
		logOnce(b, &fig2Once, t)
	}
}

var fig3Once sync.Once

func BenchmarkFigure3StallComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := exp.Figure3(int64(i) + 7)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, &fig3Once, t)
	}
}

var table1Once sync.Once

func BenchmarkTable1ReleaseStallVsLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := exp.Table1(2)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, &table1Once, t)
	}
}

var table2Once sync.Once

func BenchmarkTable2TestAndTAS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := exp.Table2(2, 2)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, &table2Once, t)
	}
}

var table3Once sync.Once

func BenchmarkTable3PolicyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := exp.Table3(2)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, &table3Once, t)
	}
}

var table4Once sync.Once

func BenchmarkTable4Definition2Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := exp.Table4(2, 2)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, &table4Once, t)
	}
}

var table5Once sync.Once

func BenchmarkTable5SubstrateComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := exp.Table5(2)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, &table5Once, t)
	}
}

var table6Once sync.Once

func BenchmarkTable6LitmusMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := exp.Table6(4)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, &table6Once, t)
	}
}

// BenchmarkCheckCampaign measures differential-campaign throughput (see
// internal/check): generation, the machine matrix, and the cached SC
// oracle together. Workers sub-benchmarks expose pool scaling; the
// summary must be identical across them (pinned by the package's own
// determinism test), so the only thing varying is wall-clock.
func BenchmarkCheckCampaign(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "workers1", 4: "workers4", 8: "workers8"}[workers], func(b *testing.B) {
			sims := 0
			for i := 0; i < b.N; i++ {
				s, err := weakorder.Check(weakorder.CampaignConfig{
					Seed:           1,
					Programs:       4,
					Policies:       []weakorder.Policy{policy.SC, policy.WODef2},
					Topologies:     []weakorder.Topology{machine.TopoBus},
					SeedsPerConfig: 1,
					Workers:        workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(s.Violations) != 0 {
					b.Fatalf("clean campaign produced %d violations", len(s.Violations))
				}
				sims += s.Sims
			}
			b.ReportMetric(float64(sims)/float64(b.N), "sims/op")
		})
	}
	// The big-machine campaign row: every generated program padded to 64
	// processors on the mesh with a limited-pointer directory — the
	// configuration the scaling work exists for, exercising idle-proc
	// fast-forward and bounded directory state through the pooled path.
	b.Run("procs64mesh", func(b *testing.B) {
		sims := 0
		for i := 0; i < b.N; i++ {
			s, err := weakorder.Check(weakorder.CampaignConfig{
				Seed:           1,
				Programs:       4,
				Policies:       []weakorder.Policy{policy.SC, policy.WODef2},
				Topologies:     []weakorder.Topology{machine.TopoMesh},
				SeedsPerConfig: 1,
				Workers:        4,
				Procs:          64,
				DirMode:        weakorder.DirLimitedPtr,
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(s.Violations) != 0 {
				b.Fatalf("clean campaign produced %d violations", len(s.Violations))
			}
			sims += s.Sims
		}
		b.ReportMetric(float64(sims)/float64(b.N), "sims/op")
	})
}

// BenchmarkFaultMatrix measures the fault injector's overhead and the
// retry protocol's cost across the preset plans on the critical-section
// workload: "none" is the baseline (injector unarmed), mild/severe add
// drops, duplicates, and delays that the hardened protocol must absorb.
// Runs go through a machine.Pool, as the campaign's hot loop does, so
// allocs/op reflects steady-state simulation cost, not machine assembly.
func BenchmarkFaultMatrix(b *testing.B) {
	prog := litmus.CriticalSection(3, 2)
	for _, preset := range []string{"none", "mild", "severe"} {
		b.Run(preset, func(b *testing.B) {
			plan, err := weakorder.ParseFaultPlan(preset)
			if err != nil {
				b.Fatal(err)
			}
			cfg := machine.Config{Policy: policy.WODef2, Topology: machine.TopoNetwork, Caches: true}
			if plan.Enabled() {
				cfg.Faults = &plan
			}
			pool := machine.NewPool()
			var cycles, retries uint64
			for i := 0; i < b.N; i++ {
				res, err := pool.RunPooled(prog, cfg, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Stats.Cycles
				for j := range res.Stats.Caches {
					retries += res.Stats.Caches[j].Retries
				}
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "simcycles/op")
			b.ReportMetric(float64(retries)/float64(b.N), "retries/op")
		})
	}
}

// BenchmarkMachineStep measures steady-state pooled simulation at
// machine scale: the scaled Figure-3 workload (one releaser
// invalidating procs-1 sharers through a release) on the 2D mesh at 16,
// 64, and 256 processors. ns/proccycle is the per-processor-cycle
// stepping cost — the number the struct-of-arrays cache/directory
// storage keeps flat as the machine grows — and allocs/op after the
// first iteration is the O(program) result-construction constant, not
// O(cycles x procs).
func BenchmarkMachineStep(b *testing.B) {
	for _, procs := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("procs%d", procs), func(b *testing.B) {
			prog := workload.Fig3Scaled(procs)
			cfg := machine.Config{Policy: policy.WODef2, Topology: machine.TopoMesh, Caches: true}
			pool := machine.NewPool()
			if _, err := pool.RunPooled(prog, cfg, 0); err != nil {
				b.Fatal(err) // warm the pool outside the timed region
			}
			b.ResetTimer()
			procCycles := uint64(0)
			for i := 0; i < b.N; i++ {
				res, err := pool.RunPooled(prog, cfg, 0)
				if err != nil {
					b.Fatal(err)
				}
				procCycles += res.Stats.Cycles * uint64(procs)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(procCycles), "ns/proccycle")
		})
	}
}

// BenchmarkMachineReuse isolates what machine pooling saves: "fresh"
// assembles the full component graph per run (machine.Run), "pooled"
// resets one machine in place (machine.Pool). Results are byte-identical
// (pinned by TestPooledMachineByteIdentical); only cost differs.
func BenchmarkMachineReuse(b *testing.B) {
	prog := litmus.CriticalSection(3, 2)
	cfg := machine.Config{Policy: policy.WODef2, Topology: machine.TopoNetwork, Caches: true}
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := machine.Run(prog, cfg, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		pool := machine.NewPool()
		for i := 0; i < b.N; i++ {
			if _, err := pool.RunPooled(prog, cfg, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnoopMachine measures the snoopy-bus substrate on the
// critical-section workload.
func BenchmarkSnoopMachine(b *testing.B) {
	prog := litmus.CriticalSection(4, 4)
	cfg := machine.Config{Policy: policy.WODef2, Topology: machine.TopoBus, Caches: true, Snoop: true}
	cycles := uint64(0)
	for i := 0; i < b.N; i++ {
		res, err := machine.Run(prog, cfg, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Stats.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "simcycles/op")
}

// ---------------------------------------------------------------------------
// Ablation benchmarks for DESIGN.md's called-out design choices.

// BenchmarkAblationROSyncCachedVsUncached isolates the Section 6
// implementation choice: cached-shared Tests vs uncached remote reads on
// a contended Test&TestAndSet lock.
func BenchmarkAblationROSyncCachedVsUncached(b *testing.B) {
	prog := litmus.TestAndTASWork(8, 2, 12)
	for _, uncached := range []bool{false, true} {
		name := "cached"
		if uncached {
			name = "uncached"
		}
		b.Run(name, func(b *testing.B) {
			cfg := machine.Config{
				Policy: policy.WODef2RO, Topology: machine.TopoNetwork,
				Caches: true, ROUncachedTest: uncached,
			}
			cycles := uint64(0)
			for i := 0; i < b.N; i++ {
				res, err := machine.Run(prog, cfg, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Stats.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "simcycles/op")
		})
	}
}

// BenchmarkAblationBusVsNetwork compares interconnects under WO-Def2 on
// the critical-section workload.
func BenchmarkAblationBusVsNetwork(b *testing.B) {
	prog := litmus.CriticalSection(4, 2)
	for _, topo := range []machine.Topology{machine.TopoBus, machine.TopoNetwork} {
		b.Run(topo.String(), func(b *testing.B) {
			cfg := machine.Config{Policy: policy.WODef2, Topology: topo, Caches: true}
			for i := 0; i < b.N; i++ {
				if _, err := machine.Run(prog, cfg, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWriteBufferDepth sweeps the write-buffer depth under
// WO-Def2 on the data-heavy handoff workload.
func BenchmarkAblationWriteBufferDepth(b *testing.B) {
	prog := litmus.Figure3Work(8)
	for _, depth := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "depth1", 4: "depth4", 16: "depth16"}[depth], func(b *testing.B) {
			cfg := machine.Config{
				Policy: policy.WODef2, Topology: machine.TopoNetwork,
				Caches: true, WriteBuffer: depth,
			}
			cycles := uint64(0)
			for i := 0; i < b.N; i++ {
				res, err := machine.Run(prog, cfg, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Stats.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "simcycles/op")
		})
	}
}

// ---------------------------------------------------------------------------
// Engine microbenchmarks.

func BenchmarkIdealEnumerateDekker(b *testing.B) {
	prog := litmus.Dekker()
	for i := 0; i < b.N; i++ {
		n := 0
		if _, err := ideal.Enumerate(prog, ideal.EnumConfig{}, func(it *ideal.Interp) error {
			n++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIdealEnumeratePOR compares naive exhaustive enumeration with
// the sleep-set partial-order reduction on a mostly-independent
// generated workload. steps/op is the paths-explored metric quoted in
// EXPERIMENTS.md's oracle table: identical outcome sets (pinned by
// TestOracleEquivalenceNaiveVsReduced) at a fraction of the search.
func BenchmarkIdealEnumeratePOR(b *testing.B) {
	prog := gen.Racy(gen.RacyConfig{Procs: 3, Vars: 6, OpsPerProc: 4, SyncFraction: 8}, 7)
	for _, mode := range []struct {
		name   string
		reduce bool
	}{{"naive", false}, {"reduced", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := ideal.EnumConfig{
				Interp:        ideal.Config{MaxMemOpsPerThread: 16},
				SkipTruncated: true,
				Reduce:        mode.reduce,
			}
			steps := 0
			for i := 0; i < b.N; i++ {
				stats, err := ideal.Enumerate(prog, cfg, func(*ideal.Interp) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
				steps += stats.Steps
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

func BenchmarkIdealRunSeedCriticalSection(b *testing.B) {
	prog := litmus.CriticalSection(4, 4)
	for i := 0; i < b.N; i++ {
		if _, err := ideal.RunSeed(prog, ideal.Config{}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHBBuildAndRaces(b *testing.B) {
	it, err := ideal.RunSeed(litmus.CriticalSection(4, 4), ideal.Config{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	exec := it.Execution()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := hb.BuildAugmented(exec, nil, hb.SyncAll)
		if races := g.Races(); len(races) != 0 {
			b.Fatal("unexpected race")
		}
	}
}

func BenchmarkVectorClockDetector(b *testing.B) {
	it, err := ideal.RunSeed(litmus.CriticalSection(4, 8), ideal.Config{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	exec := it.Execution()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if races := vclock.CheckExecution(exec, hb.SyncAll); len(races) != 0 {
			b.Fatal("unexpected race")
		}
	}
}

func BenchmarkSCMatchOracle(b *testing.B) {
	prog := litmus.CriticalSection(2, 2)
	res, err := machine.Run(prog, machine.Config{
		Policy: policy.WODef2, Topology: machine.TopoNetwork, Caches: true,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := scmatch.Matches(prog, res.Result, scmatch.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if !m.OK {
			b.Fatal("must appear SC")
		}
	}
}

// BenchmarkSatFastPath measures the polynomial appears-SC decision
// stage (internal/sat) against the two oracle stages it preempts, on the
// identical query: a campaign-shaped lock program's observed machine
// result, which the fast path fully resolves (lock rf pins down through
// the from-read and coherence-final rules). "search" is the
// result-directed exhaustive fallback; "enumerate" is the SC outcome-set
// construction a canonicalization miss pays before any set membership
// test can answer.
func BenchmarkSatFastPath(b *testing.B) {
	prog := gen.RaceFree(gen.RaceFreeConfig{
		Procs: 2, Locks: 1, SharedPerLock: 2, PrivatePerProc: 1,
		Sections: 1, OpsPerSection: 2, PrivateOps: 1,
	}, 3)
	res, err := machine.Run(prog, machine.Config{
		Policy: policy.SC, Topology: machine.TopoBus, Caches: true,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decide", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := sat.Decide(prog, res.Result, sat.Config{})
			if d.Verdict != sat.Accepted {
				b.Fatalf("must decide accepted, got %s (%s)", d.Verdict, d.Reason)
			}
		}
	})
	b.Run("search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := scmatch.Matches(prog, res.Result, scmatch.Config{})
			if err != nil {
				b.Fatal(err)
			}
			if !m.OK {
				b.Fatal("must appear SC")
			}
		}
	})
	b.Run("enumerate", func(b *testing.B) {
		cfg := ideal.EnumConfig{
			Interp:        ideal.Config{MaxMemOpsPerThread: 24},
			SkipTruncated: true,
			MaxPaths:      500_000,
			Reduce:        true,
		}
		for i := 0; i < b.N; i++ {
			if _, err := ideal.Enumerate(prog, cfg, func(*ideal.Interp) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMachineCriticalSection4p(b *testing.B) {
	prog := litmus.CriticalSection(4, 4)
	cfg := machine.Config{Policy: policy.WODef2, Topology: machine.TopoNetwork, Caches: true}
	ops := uint64(0)
	for i := 0; i < b.N; i++ {
		res, err := machine.Run(prog, cfg, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for j := range res.Stats.Procs {
			ops += res.Stats.Procs[j].MemOps
		}
	}
	b.ReportMetric(float64(ops)/float64(b.N), "memops/run")
}

func BenchmarkMachineSCvsWODef2(b *testing.B) {
	prog := litmus.Barrier(4)
	for _, pol := range []policy.Kind{policy.SC, policy.WODef2} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := machine.Config{Policy: pol, Topology: machine.TopoNetwork, Caches: true}
			cycles := uint64(0)
			for i := 0; i < b.N; i++ {
				res, err := machine.Run(prog, cfg, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Stats.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "simcycles/op")
		})
	}
}

// BenchmarkAxiomSC measures the axiomatic engine enumerating the full
// SC outcome set of Dekker (candidate construction + rf/co search +
// constraint evaluation), the declarative counterpart of
// BenchmarkIdealEnumerateDekker's interleaving enumeration. cands/op is
// the number of candidate executions examined per enumeration.
func BenchmarkAxiomSC(b *testing.B) {
	prog := litmus.Dekker()
	sc, err := weakorder.LoadModel("sc")
	if err != nil {
		b.Fatal(err)
	}
	cfg := weakorder.AxiomConfig{MaxMemOpsPerThread: 6}
	cands := 0
	for i := 0; i < b.N; i++ {
		_, st, err := weakorder.AxiomOutcomes(prog, sc, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !st.Complete {
			b.Fatal("axiomatic search incomplete")
		}
		cands += st.Candidates
	}
	b.ReportMetric(float64(cands)/float64(b.N), "cands/op")
}

func BenchmarkDRF0CheckGenerated(b *testing.B) {
	prog := gen.RaceFree(gen.RaceFreeConfig{Procs: 2, Sections: 1, OpsPerSection: 1}, 5)
	for i := 0; i < b.N; i++ {
		v, err := weakorder.CheckDRF0(prog)
		if err != nil {
			b.Fatal(err)
		}
		if !v.DRF {
			b.Fatal("generated program must be DRF")
		}
	}
}

func BenchmarkParseAndFormat(b *testing.B) {
	text := weakorder.FormatProgram(litmus.CriticalSection(4, 4))
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		p, err := weakorder.ParseProgram(text)
		if err != nil {
			b.Fatal(err)
		}
		_ = weakorder.FormatProgram(p)
	}
}

// BenchmarkResultKey exercises the result fingerprint used to classify
// outcomes.
func BenchmarkResultKey(b *testing.B) {
	it, err := ideal.RunSeed(litmus.CriticalSection(4, 4), ideal.Config{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := mem.ResultOf(it.Execution())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Key() == "" {
			b.Fatal("empty key")
		}
	}
}
