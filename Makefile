# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); keep them in sync.

GO ?= go
# Benchmark duration for `make bench`. CI smokes with 1x; use 2s+ on an
# idle machine for numbers worth comparing.
BENCHTIME ?= 2s

.PHONY: all build test short vet fmt bench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# bench regenerates BENCH_oracle.json for the current tree. To refresh
# the committed before/after artifact, first capture a baseline on the
# pre-change commit:
#   git worktree add .bench-base <base-commit>
#   (cd .bench-base && ../scripts/bench.sh -benchtime $(BENCHTIME) -o /tmp/baseline.json)
#   git worktree remove --force .bench-base
#   scripts/bench.sh -benchtime $(BENCHTIME) -baseline /tmp/baseline.json -o BENCH_oracle.json
bench:
	scripts/bench.sh -benchtime $(BENCHTIME) -o BENCH_oracle.json
