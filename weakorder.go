// Package weakorder is a library-scale reproduction of Adve & Hill,
// "Weak Ordering — A New Definition" (ISCA 1990): the DRF0
// synchronization model, weak ordering as a software/hardware contract
// (Definition 2), and cycle-level models of the hardware designs the
// paper discusses — sequentially consistent baselines, weak ordering per
// Dubois/Scheurich/Briggs (Definition 1), and the paper's new
// reserve-bit/counter implementation (Section 5.3) with the Section 6
// read-only-synchronization refinement.
//
// The package offers four layers:
//
//   - Programs: a small parallel IR with data and synchronization
//     operations, built fluently (NewProgram) or parsed from litmus text
//     (ParseProgram).
//   - The idealized architecture: exhaustive enumeration of sequentially
//     consistent executions (EnumerateSC, SCOutcomes) — the semantic
//     yardstick of Definition 2.
//   - Checkers: DRF0 verdicts via exhaustive happens-before analysis
//     (CheckDRF0) and scalable vector-clock race detection (DetectRaces);
//     an appears-sequentially-consistent oracle for observed hardware
//     results (AppearsSC).
//   - Axiomatic models: a declarative .cat-style engine (LoadModel,
//     AxiomOutcomes, AxiomCheck) that filters exhaustively constructed
//     candidate executions through relational axioms — the same memory
//     models stated as consistency predicates instead of machines, and
//     differentially checked against them (AxiomDiff).
//   - Machines: assembled multiprocessor simulations (Simulate) across
//     the paper's Figure 1 system classes and consistency policies, with
//     per-processor stall accounting.
//   - Campaigns: differential model checking at scale (Check) — generated
//     programs fuzzed across the machine matrix with every outcome
//     adjudicated against the Definition 2 oracles, and violations
//     shrunk to minimal litmus reproducers.
//
// Quickstart:
//
//	b := weakorder.NewProgram("mp")
//	data, flag := b.Var("data"), b.Var("flag")
//	p0 := b.Thread()
//	p0.StoreImm(data, 42)
//	p0.SyncStoreImm(flag, 1)
//	p1 := b.Thread()
//	p1.Label("spin")
//	p1.SyncLoad(weakorder.R1, flag)
//	p1.BeqImm(weakorder.R1, 0, "spin")
//	p1.Load(weakorder.R0, data)
//	prog := b.MustBuild()
//
//	verdict, _ := weakorder.CheckDRF0(prog)      // DRF0: yes
//	res, _ := weakorder.Simulate(prog, weakorder.MachineConfig{
//		Policy:   weakorder.WODef2,
//		Topology: weakorder.Network,
//		Caches:   true,
//	}, 1)
//	ok, _, _ := weakorder.AppearsSC(prog, res.Result) // true: Definition 2
package weakorder

import (
	"weakorder/internal/axiom"
	"weakorder/internal/cache"
	"weakorder/internal/check"
	"weakorder/internal/drf"
	"weakorder/internal/faults"
	"weakorder/internal/hb"
	"weakorder/internal/ideal"
	"weakorder/internal/lang"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/metrics"
	"weakorder/internal/policy"
	"weakorder/internal/program"
	"weakorder/internal/scmatch"
	"weakorder/internal/vclock"
)

// Core vocabulary (see the internal packages for full documentation).
type (
	// Addr is a word-granular memory address.
	Addr = mem.Addr
	// Value is the contents of one memory word.
	Value = mem.Value
	// OpKind classifies memory operations (Read, Write, SyncRead,
	// SyncWrite, SyncRMW).
	OpKind = mem.Kind
	// Op is one dynamic memory operation.
	Op = mem.Op
	// OpID identifies a dynamic operation (processor, program index).
	OpID = mem.OpID
	// Execution is a completed run: operations in completion order plus
	// final memory.
	Execution = mem.Execution
	// Result is an execution's observable outcome: every read's value
	// plus the final memory state.
	Result = mem.Result

	// Program is a multi-threaded program in the IR.
	Program = program.Program
	// ProgramBuilder assembles programs fluently.
	ProgramBuilder = program.Builder
	// ThreadBuilder assembles one thread's instructions.
	ThreadBuilder = program.ThreadBuilder
	// Reg names a thread register (R0..R15).
	Reg = program.Reg

	// SyncMode selects the synchronization model: DRF0 or the Section 6
	// refined model.
	SyncMode = hb.SyncMode
	// Race is a pair of conflicting, happens-before-unordered operations.
	Race = hb.Race
	// Verdict is a DRF0 check outcome.
	Verdict = drf.Verdict
	// DynamicRace is an online vector-clock race report.
	DynamicRace = vclock.Race

	// Policy selects the consistency enforcement hardware.
	Policy = policy.Kind
	// Topology selects the interconnect class.
	Topology = machine.Topology
	// MachineConfig parameterizes a simulated multiprocessor.
	MachineConfig = machine.Config
	// Migration schedules a thread's re-scheduling onto another processor
	// (MachineConfig.Migrations; requires ExtraProcs).
	Migration = machine.Migration
	// RunResult is a simulation outcome: execution, result, statistics.
	RunResult = machine.RunResult
	// MachineStats aggregates a run's measurements.
	MachineStats = machine.Stats
	// Metrics is a deterministic telemetry snapshot (RunResult.Metrics
	// when MachineConfig.Metrics is set; CampaignSummary.Metrics()).
	// Export with JSON or Prometheus.
	Metrics = metrics.Snapshot
	// Timeline is the per-processor/per-directory event timeline
	// (RunResult.Timeline when MachineConfig.Timeline is set). Export
	// with ChromeTrace (Perfetto / chrome://tracing compatible).
	Timeline = metrics.Timeline

	// FaultPlan configures the deterministic interconnect fault injector
	// (MachineConfig.Faults): drop/duplicate/delay probabilities for
	// request-class coherence messages. Same (plan, seed) replays
	// identically.
	FaultPlan = faults.Plan
	// FaultEvent is one injected fault or noted protocol retry.
	FaultEvent = faults.Event
	// FaultStats counts injector activity over a run.
	FaultStats = faults.Stats
	// LivenessReport is the structured outcome of a watchdog death:
	// stalled processors, pending lines, reserve-bit holders, counters.
	LivenessReport = machine.LivenessReport
	// LivenessError wraps a LivenessReport as the error a wedged run
	// returns; unwrap with errors.As.
	LivenessError = machine.LivenessError

	// CampaignConfig parameterizes a differential model-checking campaign
	// (see internal/check).
	CampaignConfig = check.CampaignConfig
	// CampaignSummary is a campaign's deterministic outcome: coverage,
	// violations with shrunk reproducers, oracle statistics.
	CampaignSummary = check.Summary
	// CampaignViolation records one contract violation and its minimal
	// reproducer.
	CampaignViolation = check.ViolationReport

	// MemoryModel is a parsed declarative (.cat-style) axiomatic memory
	// model: named relations over candidate-execution events plus
	// acyclicity/irreflexivity/emptiness axioms (see internal/axiom).
	MemoryModel = axiom.Model
	// AxiomConfig bounds the axiomatic candidate-execution search.
	AxiomConfig = axiom.Config
	// AxiomVerdict is an axiomatic check outcome: admitted outcomes,
	// fired flags (e.g. drf0's "race"), and search statistics.
	AxiomVerdict = axiom.Verdict
	// AxiomStats is the axiomatic search telemetry.
	AxiomStats = axiom.Stats
	// AxiomDiffConfig bounds one axiomatic-vs-operational comparison.
	AxiomDiffConfig = check.AxiomDiffConfig
	// AxiomDiffResult reports one axiomatic-vs-operational comparison.
	AxiomDiffResult = check.AxiomDiffResult
)

// Operation kinds.
const (
	Read      = mem.Read
	Write     = mem.Write
	SyncRead  = mem.SyncRead
	SyncWrite = mem.SyncWrite
	SyncRMW   = mem.SyncRMW
)

// Registers.
const (
	R0 = program.R0
	R1 = program.R1
	R2 = program.R2
	R3 = program.R3
	R4 = program.R4
	R5 = program.R5
	R6 = program.R6
	R7 = program.R7
)

// Synchronization models.
const (
	// DRF0 is Definition 3: every synchronization operation orders.
	DRF0 = hb.SyncAll
	// DRF0RO is the Section 6 refinement: read-only synchronization
	// operations carry no release duty.
	DRF0RO = hb.SyncWriterOrdered
	// DRF0RA is the Section 7 exploration that became release
	// consistency: ordering flows only through release→acquire pairs
	// (writing sync op, then a later reading sync op on the same
	// location); two releases order nothing between their issuers.
	DRF0RA = hb.SyncPairedRA
)

// Consistency policies.
const (
	// SC is the Scheurich-Dubois sequentially consistent baseline.
	SC = policy.SC
	// Unconstrained is write-buffered hardware with no ordering
	// enforcement (the Figure 1 strawman).
	Unconstrained = policy.Unconstrained
	// WODef1 is weak ordering per Dubois/Scheurich/Briggs.
	WODef1 = policy.WODef1
	// WODef2 is the paper's Section 5.3 implementation of Definition 2.
	WODef2 = policy.WODef2
	// WODef2RO adds the Section 6 read-only-synchronization refinement.
	WODef2RO = policy.WODef2RO
)

// Interconnects.
const (
	// Bus is a shared bus (globally serialized transactions).
	Bus = machine.TopoBus
	// Network is a general interconnection network (independent routing,
	// variable latency).
	Network = machine.TopoNetwork
	// Mesh is a 2D mesh with deterministic XY routing and per-hop
	// latency — the scalable big-machine interconnect.
	Mesh = machine.TopoMesh
)

// Directory sharer representations (MachineConfig.DirMode).
const (
	// DirFullMap tracks exact sharers, one presence bit per processor —
	// the default and the correctness reference.
	DirFullMap = cache.DirFullMap
	// DirLimitedPtr tracks up to MachineConfig.DirPointers sharers;
	// overflow degrades the line to broadcast invalidation.
	DirLimitedPtr = cache.DirLimitedPtr
	// DirCoarseVector tracks one presence bit per group of
	// MachineConfig.DirCoarseness processors.
	DirCoarseVector = cache.DirCoarseVector
)

// ParseDirMode parses the CLI spelling of a directory mode: full,
// limited, or coarse (empty = full).
func ParseDirMode(s string) (cache.DirMode, error) { return cache.ParseDirMode(s) }

// NewProgram returns a builder for a program with the given name.
func NewProgram(name string) *ProgramBuilder { return program.NewBuilder(name) }

// ParseProgram parses the litmus text format (see internal/lang for the
// grammar).
func ParseProgram(src string) (*Program, error) { return lang.Parse(src) }

// FormatProgram renders a program in the litmus text format.
func FormatProgram(p *Program) string { return lang.Format(p) }

// CheckDRF0 decides whether p obeys DRF0 (Definition 3) by exhaustively
// enumerating its idealized executions with sane default budgets:
// spinning paths are bounded at 16 dynamic memory operations per thread
// and abandoned rather than failing the check (the Verdict reports how
// many). For deeper or custom budgets use internal/drf via a fork, or
// split the program.
func CheckDRF0(p *Program) (Verdict, error) { return CheckModel(p, DRF0) }

// CheckModel is CheckDRF0 under an explicit synchronization model. The
// enumeration is partial-order reduced (one representative per class of
// executions that merely commute independent operations), which finds
// the same set of distinct races; Verdict.Executions counts
// representatives.
func CheckModel(p *Program, mode SyncMode) (Verdict, error) {
	return drf.Check(p, mode, drf.CheckConfig{Enum: reducedEnum()})
}

// CheckModelAll is CheckModel but collects distinct race witnesses from
// every racy idealized execution instead of stopping at the first.
func CheckModelAll(p *Program, mode SyncMode) (Verdict, error) {
	return drf.Check(p, mode, drf.CheckConfig{Enum: reducedEnum(), AllRaces: true})
}

// DetectRaces runs the online vector-clock detector over one execution
// (linear time; the scalable alternative to CheckDRF0 for long traces).
func DetectRaces(e *Execution, mode SyncMode) []DynamicRace {
	return vclock.CheckExecution(e, mode)
}

// EnumerateSC visits every sequentially consistent execution of p at
// memory-operation granularity. The visitor's error stops enumeration
// (use StopEnumeration for a non-error stop).
func EnumerateSC(p *Program, visit func(*Execution) error) error {
	_, err := ideal.Enumerate(p, boundedEnum(), func(it *ideal.Interp) error {
		return visit(it.Execution())
	})
	return err
}

// StopEnumeration stops EnumerateSC early without reporting an error.
var StopEnumeration = ideal.ErrStop

// SCOutcomes returns every distinct sequentially consistent result of p,
// keyed by Result.Key, with one witness execution each. The enumeration
// is partial-order reduced: results are invariant across interleavings
// that only commute independent operations, so the outcome set is the
// same as full enumeration at a fraction of the paths.
func SCOutcomes(p *Program) (map[string]*Execution, error) {
	cfg := boundedEnum()
	cfg.Reduce = true
	return scmatch.Outcomes(p, cfg)
}

// RunSC executes p once on the idealized architecture under a fair
// pseudo-random interleaving derived from seed.
func RunSC(p *Program, seed int64) (*Execution, error) {
	it, err := ideal.RunSeed(p, ideal.Config{}, seed)
	if err != nil {
		return nil, err
	}
	return it.Execution(), nil
}

// AppearsSC reports whether result r of p appears sequentially
// consistent — whether some idealized execution produces the identical
// result (Definition 2's obligation, Lemma 1's condition). On success the
// witness execution is returned.
func AppearsSC(p *Program, r Result) (bool, *Execution, error) {
	m, err := scmatch.Matches(p, r, scmatch.Config{})
	return m.OK, m.Witness, err
}

// Simulate assembles the machine described by cfg and runs p to
// completion, with all randomized latencies derived from seed.
func Simulate(p *Program, cfg MachineConfig, seed int64) (*RunResult, error) {
	return machine.Run(p, cfg, seed)
}

// MachinePool reuses assembled machines across Simulate-style runs that
// share a structural configuration, resetting caches, directories,
// network queues, and processors in place instead of rebuilding the
// component graph per run. Results are byte-identical to fresh
// machines. A pool is not goroutine-safe — use one per worker, as the
// campaign does. Returned results alias pool-owned buffers
// (RunResult.Exec.Ops, OpCycles) that the next run on the same pooled
// machine overwrites; copy them to retain across runs.
type MachinePool = machine.Pool

// NewMachinePool returns an empty machine pool.
func NewMachinePool() *MachinePool { return machine.NewPool() }

// Check runs a differential model-checking campaign: generated programs
// are simulated across a policy × topology × caches matrix and every
// outcome is adjudicated against the SC oracles — runs under the SC
// policy must appear sequentially consistent, and DRF0 programs must
// appear sequentially consistent on every weakly ordered policy
// (Definition 2). Violations are shrunk to minimal reproducers. The
// summary is byte-identical for a fixed config, regardless of worker
// count.
func Check(cfg CampaignConfig) (*CampaignSummary, error) { return check.Run(cfg) }

// CampaignProgress is one live snapshot of a running campaign's
// progress: per-config run counts, oracle-stage rates, ETA, and journal
// position. It is the payload of the control plane's /progress endpoint
// and of CampaignConfig.ProgressJSON lines.
type CampaignProgress = check.Progress

// Serve is Check with the campaign control plane enabled on addr: an
// embedded HTTP server exposing /healthz, /metrics (Prometheus text),
// /progress (+ SSE stream), /violations (NDJSON + SSE tail), /summary
// (the current partial summary), and /debug/pprof for the duration of
// the campaign. The server only observes — the returned summary is
// byte-identical to Check's. Use ":0" with cfg.OnListen to bind an
// ephemeral port.
func Serve(cfg CampaignConfig, addr string) (*CampaignSummary, error) {
	cfg.Listen = addr
	return check.Run(cfg)
}

// ParsePolicy resolves a policy name ("SC", "Unconstrained", "WO-Def1",
// "WO-Def2", "WO-Def2+RO").
func ParsePolicy(name string) (Policy, error) { return policy.Parse(name) }

// Fault-plan presets for MachineConfig.Faults and CampaignConfig.Faults.
func FaultsNone() FaultPlan   { return faults.None() }
func FaultsMild() FaultPlan   { return faults.Mild() }
func FaultsSevere() FaultPlan { return faults.Severe() }

// ParseFaultPlan resolves a fault-plan preset name: "none", "mild", or
// "severe".
func ParseFaultPlan(name string) (FaultPlan, error) { return faults.Parse(name) }

// Policies lists every policy in presentation order.
func Policies() []Policy { return policy.All() }

// LoadModel returns a bundled axiomatic memory model by name ("sc",
// "tso", "ra", "drf0"); see ModelNames.
func LoadModel(name string) (*MemoryModel, error) { return axiom.Load(name) }

// ModelNames lists the bundled axiomatic models.
func ModelNames() []string { return axiom.ModelNames() }

// ParseModel parses .cat-style model source (see internal/axiom for the
// grammar). name labels errors and metrics.
func ParseModel(name, src string) (*MemoryModel, error) { return axiom.Parse(name, src) }

// AxiomOutcomes enumerates every program outcome the axiomatic model
// admits: candidate executions (events + po + rf + co) are constructed
// exhaustively under cfg's budgets and filtered by the model's axioms.
// The zero AxiomConfig uses sane defaults (8 memory ops per thread).
func AxiomOutcomes(p *Program, m *MemoryModel, cfg AxiomConfig) (map[string]Result, AxiomStats, error) {
	return axiom.Outcomes(p, m, cfg)
}

// AxiomCheck evaluates the model over every consistent candidate
// execution of p, including flag constraints — under the bundled "drf0"
// model, Verdict.Flags["race"] counts racy candidates, giving an
// axiomatic DRF0 classification to compare with CheckDRF0.
func AxiomCheck(p *Program, m *MemoryModel, cfg AxiomConfig) (*AxiomVerdict, error) {
	return axiom.Check(p, m, cfg)
}

// AxiomDiff cross-checks the axiomatic engine against the operational
// oracles on one program: axiomatic-SC outcomes vs exhaustive idealized
// interleaving, and the drf0 race flag vs CheckDRF0's classification.
func AxiomDiff(p *Program, cfg AxiomDiffConfig) (AxiomDiffResult, error) {
	return check.AxiomDiff(p, cfg)
}

func boundedEnum() ideal.EnumConfig {
	return ideal.EnumConfig{
		Interp:        ideal.Config{MaxMemOpsPerThread: 16},
		SkipTruncated: true,
		MaxPaths:      5_000_000,
	}
}

// reducedEnum is boundedEnum with partial-order reduction for the race
// checkers: PreserveSyncOrder keeps same-address synchronization pairs
// ordered, which the happens-before builders require.
func reducedEnum() ideal.EnumConfig {
	cfg := boundedEnum()
	cfg.Reduce = true
	cfg.PreserveSyncOrder = true
	return cfg
}
