// Spinlock: the Section 6 study. Processors increment a shared counter
// under a Test&TestAndSet lock. Under WO-Def2 every spinning Test is
// treated as a write by the protocol and serializes on the lock line;
// under WO-Def2+RO the Tests are read-only synchronization that spins on
// locally cached shared copies — the serialization (and its cycles)
// disappear as contention grows.
package main

import (
	"fmt"
	"log"

	"weakorder"
)

// ttas builds the Test&TestAndSet critical-section program.
func ttas(procs, rounds, work int) *weakorder.Program {
	b := weakorder.NewProgram(fmt.Sprintf("ttas-%dp", procs))
	lock, counter := b.Var("lock"), b.Var("counter")
	for p := 0; p < procs; p++ {
		t := b.Thread()
		priv := b.Var(fmt.Sprintf("priv%d", p))
		for r := 0; r < rounds; r++ {
			spin := fmt.Sprintf("spin%d", r)
			t.Label(spin)
			t.SyncLoad(weakorder.R0, lock) // Test: read-only sync
			t.BneImm(weakorder.R0, 0, spin)
			t.TAS(weakorder.R0, lock) // TestAndSet: sync RMW
			t.BneImm(weakorder.R0, 0, spin)
			t.Load(weakorder.R1, counter)
			t.AddImm(weakorder.R1, weakorder.R1, 1)
			t.Store(counter, weakorder.R1)
			for w := 0; w < work; w++ {
				t.StoreImm(priv, weakorder.Value(w))
			}
			t.SyncStoreImm(lock, 0) // Unset: sync write
		}
	}
	return b.MustBuild()
}

func main() {
	const rounds, work, seeds = 2, 12, 5

	fmt.Printf("%-6s %-12s %-12s %-14s %-10s\n", "procs", "policy", "avg cycles", "dir forwards", "counter ok")
	for _, procs := range []int{2, 4, 8} {
		prog := ttas(procs, rounds, work)
		counter, _ := prog.AddrOf("counter")
		for _, pol := range []weakorder.Policy{weakorder.WODef2, weakorder.WODef2RO} {
			cfg := weakorder.MachineConfig{
				Policy: pol, Topology: weakorder.Network, Caches: true,
			}
			var cycles, forwards uint64
			allOK := true
			for seed := int64(0); seed < seeds; seed++ {
				res, err := weakorder.Simulate(prog, cfg, seed*13+1)
				if err != nil {
					log.Fatal(err)
				}
				cycles += res.Stats.Cycles
				for i := range res.Stats.Dirs {
					forwards += res.Stats.Dirs[i].Forwards
				}
				if res.Exec.Final[counter] != weakorder.Value(procs*rounds) {
					allOK = false
				}
			}
			fmt.Printf("%-6d %-12s %-12.1f %-14d %-10v\n",
				procs, pol, float64(cycles)/seeds, forwards/seeds, allOK)
		}
	}
	fmt.Println("\nthe refinement removes the Test serialization: fewer exclusive transfers,")
	fmt.Println("fewer cycles at high contention, with mutual exclusion intact.")
}
