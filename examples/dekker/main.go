// Dekker: the paper's Figure 1 walk-through. The store-buffering litmus
// test runs on all four system classes (bus/network × no-cache/caches)
// under unconstrained hardware and under sequential consistency; the
// forbidden outcome (both flags observed zero — "both processors killed")
// appears only on the unconstrained machines.
package main

import (
	"fmt"
	"log"

	"weakorder"
)

func dekker() *weakorder.Program {
	b := weakorder.NewProgram("dekker")
	x, y := b.Var("x"), b.Var("y")
	p0 := b.Thread()
	p0.StoreImm(x, 1)
	p0.Load(weakorder.R0, y)
	p1 := b.Thread()
	p1.StoreImm(y, 1)
	p1.Load(weakorder.R0, x)
	return b.MustBuild()
}

func main() {
	prog := dekker()
	fmt.Println(prog)

	// The program races: DRF0 offers it no guarantee.
	verdict, err := weakorder.CheckDRF0(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(verdict)
	for _, r := range verdict.Races {
		fmt.Println("  ", r)
	}
	fmt.Println()

	// Under SC, exactly three outcomes are possible.
	outcomes, err := weakorder.SCOutcomes(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequentially consistent outcomes (%d):\n", len(outcomes))
	for key := range outcomes {
		fmt.Println("  ", key)
	}
	fmt.Println()

	const seeds = 20
	fmt.Printf("%-18s %-14s %-12s %s\n", "system", "policy", "both-zero", "of runs")
	for _, topo := range []weakorder.Topology{weakorder.Bus, weakorder.Network} {
		for _, caches := range []bool{false, true} {
			for _, pol := range []weakorder.Policy{weakorder.Unconstrained, weakorder.SC} {
				cfg := weakorder.MachineConfig{
					Policy: pol, Topology: topo, Caches: caches, NetJitter: 20,
				}
				violations := 0
				for seed := int64(0); seed < seeds; seed++ {
					res, err := weakorder.Simulate(prog, cfg, seed)
					if err != nil {
						log.Fatal(err)
					}
					// The forbidden outcome: both loads returned zero.
					r0 := res.Result.Reads[weakorder.OpID{Proc: 0, Index: 1}]
					r1 := res.Result.Reads[weakorder.OpID{Proc: 1, Index: 1}]
					if r0.Value == 0 && r1.Value == 0 {
						violations++
					}
				}
				sys := map[bool]string{true: "caches", false: "nocache"}[caches]
				fmt.Printf("%-18s %-14s %-12d %d\n",
					fmt.Sprintf("%v+%s", topo, sys), pol, violations, seeds)
			}
		}
	}
	fmt.Println("\nunconstrained hardware exhibits the violation; SC hardware never does.")
}
