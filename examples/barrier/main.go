// Barrier: pre-barrier writes must be visible after the barrier. Each
// processor writes a value, crosses a centralized sense-style barrier
// built from synchronization flags, and reads its left neighbor's value.
// The example compares all four consistency policies: every one delivers
// the correct values (the program obeys DRF0), but they pay very
// different synchronization costs.
package main

import (
	"fmt"
	"log"

	"weakorder"
)

// barrier builds the program: arrive flags + a go flag, all sync
// variables; data slots are ordinary memory.
func barrier(procs int) *weakorder.Program {
	b := weakorder.NewProgram(fmt.Sprintf("barrier-%dp", procs))
	goFlag := b.Var("go")
	data := make([]weakorder.Addr, procs)
	arrive := make([]weakorder.Addr, procs)
	for p := 0; p < procs; p++ {
		data[p] = b.Var(fmt.Sprintf("data%d", p))
		arrive[p] = b.Var(fmt.Sprintf("arrive%d", p))
	}
	for p := 0; p < procs; p++ {
		t := b.Thread()
		t.StoreImm(data[p], weakorder.Value(100+p)) // pre-barrier write
		t.SyncStoreImm(arrive[p], 1)
		if p == 0 {
			for q := 1; q < procs; q++ {
				lbl := fmt.Sprintf("gather%d", q)
				t.Label(lbl)
				t.SyncLoad(weakorder.R0, arrive[q])
				t.BeqImm(weakorder.R0, 0, lbl)
			}
			t.SyncStoreImm(goFlag, 1)
		} else {
			t.Label("wait")
			t.SyncLoad(weakorder.R0, goFlag)
			t.BeqImm(weakorder.R0, 0, "wait")
		}
		t.Load(weakorder.R2, data[(p+procs-1)%procs]) // post-barrier read
	}
	return b.MustBuild()
}

func main() {
	const procs, seeds = 4, 5
	prog := barrier(procs)

	// Exhaustive DRF0 checking is exponential in threads; verify the
	// 2-processor instance of the same construction (the discipline —
	// data published only before sync-flag releases — is size-independent).
	verdict, err := weakorder.CheckDRF0(barrier(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2-processor instance:", verdict)

	fmt.Printf("\n%-12s %-12s %-16s %-10s\n", "policy", "avg cycles", "avg sync stall", "correct")
	for _, pol := range []weakorder.Policy{weakorder.SC, weakorder.WODef1, weakorder.WODef2, weakorder.WODef2RO} {
		cfg := weakorder.MachineConfig{Policy: pol, Topology: weakorder.Network, Caches: true}
		var cycles, stall uint64
		correct := true
		for seed := int64(0); seed < seeds; seed++ {
			res, err := weakorder.Simulate(prog, cfg, seed*3+2)
			if err != nil {
				log.Fatal(err)
			}
			cycles += res.Stats.Cycles
			for i := range res.Stats.Procs {
				stall += res.Stats.Procs[i].SyncStall()
			}
			// Every post-barrier read must observe the neighbor's
			// pre-barrier write.
			for _, op := range res.Exec.Ops {
				if op.Kind == weakorder.Read && len(op.Label) > 4 && op.Label[:4] == "data" {
					want := weakorder.Value(100 + int(op.Label[4]-'0'))
					if op.Got != want {
						correct = false
					}
				}
			}
		}
		fmt.Printf("%-12s %-12.1f %-16.1f %-10v\n",
			pol, float64(cycles)/seeds, float64(stall)/seeds, correct)
	}
	fmt.Println("\nall policies deliver the barrier semantics (the program obeys DRF0);")
	fmt.Println("they differ only in how much synchronization stall they pay for it.")
}
