// Racedetect: DRF0 checking and dynamic race detection. A racy
// store-buffering program and its synchronized repair are checked with
// the exhaustive Definition 3 analysis and with the online vector-clock
// detector; the racy one is then shown actually misbehaving on weakly
// ordered hardware while the repair keeps the Definition 2 guarantee.
package main

import (
	"fmt"
	"log"

	"weakorder"
)

const racySrc = `
program racy-sb
thread P0 {
  st x, #1          # ordinary data accesses: they race
  ld r0, y
}
thread P1 {
  st y, #1
  ld r0, x
}
`

const fixedSrc = `
program sync-sb
thread P0 {
  sst x, #1         # the same communication through sync operations
  sld r0, y
}
thread P1 {
  sst y, #1
  sld r0, x
}
`

func main() {
	for _, src := range []string{racySrc, fixedSrc} {
		prog, err := weakorder.ParseProgram(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s\n", prog.Name)

		// Static-exhaustive: Definition 3 over every idealized execution.
		verdict, err := weakorder.CheckDRF0(prog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(verdict)
		for _, r := range verdict.Races {
			fmt.Println("  ", r)
		}

		// Dynamic: vector clocks over single executions.
		dynamic := 0
		for seed := int64(0); seed < 10; seed++ {
			exec, err := weakorder.RunSC(prog, seed)
			if err != nil {
				log.Fatal(err)
			}
			dynamic += len(weakorder.DetectRaces(exec, weakorder.DRF0))
		}
		fmt.Printf("vector-clock detector: %d race reports over 10 executions\n", dynamic)

		// Consequence on weak hardware: count runs that do not appear SC.
		nonSC := 0
		cfg := weakorder.MachineConfig{
			Policy: weakorder.WODef2, Topology: weakorder.Network,
			Caches: true, NetJitter: 20,
		}
		const runs = 30
		for seed := int64(0); seed < runs; seed++ {
			res, err := weakorder.Simulate(prog, cfg, seed)
			if err != nil {
				log.Fatal(err)
			}
			ok, _, err := weakorder.AppearsSC(prog, res.Result)
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				nonSC++
			}
		}
		fmt.Printf("on WO-Def2 hardware: %d/%d runs do NOT appear sequentially consistent\n\n", nonSC, runs)
	}
	fmt.Println("the racy program loses the Definition 2 guarantee; the repaired one keeps it.")
}
