// Migration: the paper's Section 5.1 context-switch condition, live.
// A consumer thread is re-scheduled onto an idle processor mid-spin; the
// machine first drains the source processor ("all previous reads of the
// process have returned their values and all previous writes have been
// globally performed"), then moves the architectural state. The handoff
// still delivers the published value and the run still appears
// sequentially consistent — migration does not weaken the contract.
package main

import (
	"fmt"
	"log"

	"weakorder"
)

func main() {
	b := weakorder.NewProgram("migrating-consumer")
	data, flag := b.Var("data"), b.Var("flag")

	p0 := b.Thread() // producer: slow drip of work, then publish
	for i := 0; i < 6; i++ {
		p0.StoreImm(b.Var(fmt.Sprintf("w%d", i)), weakorder.Value(i))
	}
	p0.StoreImm(data, 42)
	p0.SyncStoreImm(flag, 1)

	p1 := b.Thread() // consumer: spins, will migrate mid-spin
	p1.Label("spin")
	p1.SyncLoad(weakorder.R1, flag)
	p1.BeqImm(weakorder.R1, 0, "spin")
	p1.Load(weakorder.R0, data)

	prog := b.MustBuild()

	for _, migrate := range []bool{false, true} {
		cfg := weakorder.MachineConfig{
			Policy:   weakorder.WODef2,
			Topology: weakorder.Network,
			Caches:   true,
			NetBase:  15,
		}
		label := "pinned"
		if migrate {
			label = "migrated (P1 -> P2 at cycle 40)"
			cfg.ExtraProcs = 1
			cfg.Migrations = []weakorder.Migration{{AtCycle: 40, From: 1, To: 2}}
		}
		res, err := weakorder.Simulate(prog, cfg, 3)
		if err != nil {
			log.Fatal(err)
		}
		var got weakorder.Value
		for _, op := range res.Exec.Ops {
			if op.Proc == 1 && op.Kind == weakorder.Read && op.Addr == data {
				got = op.Got
			}
		}
		ok, _, err := weakorder.AppearsSC(prog, res.Result)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s consumer read %d, %d cycles, appears SC: %v\n",
			label+":", got, res.Stats.Cycles, ok)
	}
	fmt.Println("\noperations keep their logical thread identity across the switch,")
	fmt.Println("so results remain comparable against the idealized executions.")
}
