// Quickstart: build a synchronized message-passing program, verify it
// obeys DRF0, run it on weakly ordered hardware, and confirm the result
// appears sequentially consistent — Definition 2's contract, end to end.
package main

import (
	"fmt"
	"log"

	"weakorder"
)

func main() {
	// P0 publishes data then sets a synchronization flag; P1 spins on the
	// flag with a synchronization read, then reads the data.
	b := weakorder.NewProgram("quickstart")
	data, flag := b.Var("data"), b.Var("flag")

	p0 := b.Thread()
	p0.StoreImm(data, 42)    // ordinary data write
	p0.SyncStoreImm(flag, 1) // release: hardware-recognizable sync op

	p1 := b.Thread()
	p1.Label("spin")
	p1.SyncLoad(weakorder.R1, flag) // acquire: sync read
	p1.BeqImm(weakorder.R1, 0, "spin")
	p1.Load(weakorder.R0, data) // must observe 42

	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prog)

	// 1. Software side of the contract: the program obeys DRF0.
	verdict, err := weakorder.CheckDRF0(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(verdict)

	// 2. Hardware side: run on the paper's Section 5.3 implementation.
	res, err := weakorder.Simulate(prog, weakorder.MachineConfig{
		Policy:   weakorder.WODef2,
		Topology: weakorder.Network,
		Caches:   true,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d cycles; committed operations:\n", res.Stats.Cycles)
	for _, op := range res.Exec.Ops {
		fmt.Println("  ", op)
	}

	// 3. The contract's payoff: the weak machine appears SC.
	ok, _, err := weakorder.AppearsSC(prog, res.Result)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appears sequentially consistent: %v\n", ok)
}
