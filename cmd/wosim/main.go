// Command wosim runs a litmus program on a configured simulated
// multiprocessor and reports the result, whether it appears sequentially
// consistent, and the stall statistics.
//
// Usage:
//
//	wosim -policy WO-Def2 -topo network -caches -seeds 20 prog.litmus
//	echo '...' | wosim -policy SC -
//
// With -builtin NAME a program from the built-in litmus library is used
// instead of a file (see -list).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"weakorder"
	"weakorder/internal/cpu"
	"weakorder/internal/ideal"
	"weakorder/internal/litmus"
	"weakorder/internal/machine"
	"weakorder/internal/policy"
	"weakorder/internal/program"
	"weakorder/internal/runner"
	"weakorder/internal/trace"
	"weakorder/internal/workload"
)

var builtins = map[string]func() *program.Program{
	"dekker":      litmus.Dekker,
	"dekker-sync": litmus.DekkerSync,
	"mp":          litmus.MessagePassing,
	"mp-racy":     litmus.MessagePassingRacy,
	"lb":          litmus.LoadBuffering,
	"iriw":        litmus.IRIW,
	"coherence":   litmus.Coherence,
	"figure3":     litmus.Figure3,
	"critsec":     func() *program.Program { return litmus.CriticalSection(2, 2) },
	"ttas":        func() *program.Program { return litmus.TestAndTAS(2, 2) },
	"barrier":     func() *program.Program { return litmus.Barrier(3) },
	"fig3scaled":  func() *program.Program { return workload.Fig3Scaled(8) },
}

func main() {
	var (
		policyName  = flag.String("policy", "WO-Def2", "consistency policy: SC, Unconstrained, WO-Def1, WO-Def2, WO-Def2+RO")
		topo        = flag.String("topo", "network", "interconnect: bus, network, or mesh")
		caches      = flag.Bool("caches", true, "coherent caches (false = flat memory modules)")
		procs       = flag.Int("procs", 0, "total processors: the program's threads plus idle procs up to this count (0 = threads only)")
		dirmode     = flag.String("dirmode", "full", "directory sharer representation: full, limited, or coarse (requires -caches)")
		seeds       = flag.Int("seeds", 1, "number of seeds to run")
		seed        = flag.Int64("seed", 0, "first seed")
		builtin     = flag.String("builtin", "", "run a built-in litmus program instead of a file")
		list        = flag.Bool("list", false, "list built-in programs and exit")
		verbose     = flag.Bool("v", false, "print the committed-operation trace")
		metricsOut  = flag.String("metrics", "", "write the last run's metrics snapshot as JSON to this file (- for stdout)")
		timelineOut = flag.String("timeline", "", "write the last run's Chrome trace_event timeline to this file (- for stdout)")
		traceFirst  = flag.Bool("trace", false, "print the first seed's full timeline (inspecting shrunk reproducers)")
		faultsIn    = flag.String("faults", "none", "interconnect fault plan: a preset (none, mild, severe) or drop=/dup=/delay=/maxdelay=/noretry spec (requires -caches)")
		checkSC     = flag.Bool("check-sc", true, "check each result against the SC oracle")
		suite       = flag.Bool("suite", false, "run the classic litmus suite across all policies and exit")
	)
	flag.Parse()

	if *suite {
		runSuite(*seeds)
		return
	}

	if *list {
		names := make([]string, 0, len(builtins))
		for n := range builtins {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	prog, err := loadProgram(*builtin, flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	pol, err := weakorder.ParsePolicy(*policyName)
	if err != nil {
		fatal(err)
	}
	cfg := weakorder.MachineConfig{
		Policy:   pol,
		Caches:   *caches,
		Metrics:  *metricsOut != "",
		Timeline: *timelineOut != "",
	}
	switch *topo {
	case "bus":
		cfg.Topology = weakorder.Bus
	case "network":
		cfg.Topology = weakorder.Network
	case "mesh":
		cfg.Topology = weakorder.Mesh
	default:
		fatalUsage(fmt.Errorf("unknown topology %q (want bus, network, or mesh)", *topo))
	}
	if *procs < 0 {
		fatalUsage(fmt.Errorf("-procs must be non-negative, got %d", *procs))
	}
	if *procs > 0 {
		if *procs < prog.NumThreads() {
			fatalUsage(fmt.Errorf("-procs %d is below the program's %d threads", *procs, prog.NumThreads()))
		}
		cfg.ExtraProcs = *procs - prog.NumThreads()
	}
	dm, err := weakorder.ParseDirMode(*dirmode)
	if err != nil {
		fatalUsage(err)
	}
	if dm != weakorder.DirFullMap && !*caches {
		fatalUsage(fmt.Errorf("-dirmode %s requires -caches", dm))
	}
	cfg.DirMode = dm
	plan, err := weakorder.ParseFaultPlan(*faultsIn)
	if err != nil {
		fatalUsage(err)
	}
	if plan.Enabled() {
		cfg.Faults = &plan
		// Tracing wants the DROP/DUP/DELAY/RETRY events in the timeline.
		cfg.RecordFaultEvents = *traceFirst
	}

	fmt.Printf("program %s on %s\n\n", prog.Name, cfg.Name())
	outcomes := make(map[string]int)
	nonSC := 0
	condHits := 0
	for s := 0; s < *seeds; s++ {
		res, err := weakorder.Simulate(prog, cfg, *seed+int64(s))
		if err != nil {
			fatal(err)
		}
		outcomes[res.Result.Key()]++
		if *verbose {
			fmt.Printf("--- seed %d (%d cycles)\n", *seed+int64(s), res.Stats.Cycles)
			for _, op := range res.Exec.Ops {
				fmt.Println("  ", op)
			}
		}
		if *checkSC {
			ok, _, err := weakorder.AppearsSC(prog, res.Result)
			if err != nil {
				fatal(err)
			}
			if !ok {
				nonSC++
			}
		}
		if res.CondHolds(prog) {
			condHits++
		}
		if s == 0 && *traceFirst {
			fmt.Println(renderTimeline(res, 0))
		}
		if s == *seeds-1 {
			printStats(res)
			if err := writeTelemetry(res, *metricsOut, *timelineOut); err != nil {
				fatal(err)
			}
		}
	}

	fmt.Printf("\noutcomes over %d seeds:\n", *seeds)
	keys := make([]string, 0, len(outcomes))
	for k := range outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %4dx %s\n", outcomes[k], k)
	}
	if *checkSC {
		fmt.Printf("non-SC results: %d/%d\n", nonSC, *seeds)
	}
	if prog.Cond != nil {
		allowed, err := condAllowedUnderSC(prog)
		if err != nil {
			fatal(err)
		}
		verdict := "FORBIDDEN under SC"
		if allowed {
			verdict = "allowed under SC"
		}
		fmt.Printf("condition %q: observed %d/%d (%s)\n", prog.Cond.String(), condHits, *seeds, verdict)
	}
}

// condAllowedUnderSC reports whether any sequentially consistent
// execution satisfies the program's postcondition.
func condAllowedUnderSC(prog *program.Program) (bool, error) {
	allowed := false
	_, err := ideal.Enumerate(prog, ideal.EnumConfig{
		Interp:        ideal.Config{MaxMemOpsPerThread: 16},
		SkipTruncated: true,
		MaxPaths:      5_000_000,
	}, func(it *ideal.Interp) error {
		if it.EvalCond(prog.Cond) {
			allowed = true
			return ideal.ErrStop
		}
		return nil
	})
	return allowed, err
}

func loadProgram(builtin, path string) (*program.Program, error) {
	if builtin != "" {
		mk, ok := builtins[builtin]
		if !ok {
			return nil, fmt.Errorf("unknown builtin %q (use -list)", builtin)
		}
		return mk(), nil
	}
	if path == "" {
		return nil, fmt.Errorf("usage: wosim [flags] prog.litmus  (or -builtin NAME, or - for stdin)")
	}
	var src []byte
	var err error
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return weakorder.ParseProgram(string(src))
}

// renderTimeline picks the fault-interleaved rendering when the run
// recorded injector events, the plain one otherwise.
func renderTimeline(res *weakorder.RunResult, maxRows int) string {
	if len(res.FaultEvents) > 0 {
		return trace.TimelineEvents(res.Exec, res.OpCycles, res.FaultEvents, maxRows)
	}
	return trace.Timeline(res.Exec, maxRows)
}

// writeTelemetry emits the last run's metrics snapshot and Chrome
// trace_event timeline to the paths given on the command line ("-"
// means stdout, "" means off).
func writeTelemetry(res *weakorder.RunResult, metricsPath, timelinePath string) error {
	if metricsPath != "" {
		b, err := res.Metrics.JSON()
		if err != nil {
			return err
		}
		if err := writeOut(metricsPath, b); err != nil {
			return err
		}
	}
	if timelinePath != "" {
		// Stream the trace straight to its destination: a long run's
		// timeline can dwarf the rest of the process's memory if
		// materialized as one byte slice first.
		if timelinePath == "-" {
			if err := res.Timeline.WriteChromeTrace(os.Stdout); err != nil {
				return err
			}
		} else {
			f, err := os.Create(timelinePath)
			if err != nil {
				return err
			}
			if err := res.Timeline.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeOut(path string, b []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func printStats(res *weakorder.RunResult) {
	fmt.Printf("\nlast run: %d cycles, %d messages (avg latency %.1f)\n",
		res.Stats.Cycles, res.Stats.Net.Messages, res.Stats.Net.AvgLatency())
	if fs := res.FaultStats; fs != nil {
		fmt.Printf("faults: %d faultable msgs, %d dropped, %d duplicated, %d delayed (+%d cycles total), %d retries\n",
			fs.Faultable, fs.Drops, fs.Dups, fs.Delays, fs.ExtraDelayCycles, fs.Retries)
	}
	for i := range res.Stats.Procs {
		p := &res.Stats.Procs[i]
		fmt.Printf("  P%d: %d mem ops (%d sync), stalls:", i, p.MemOps, p.SyncOps)
		for r := 0; r < cpu.NumReasons; r++ {
			if p.Stall[r] > 0 {
				fmt.Printf(" %v=%d", cpu.Reason(r), p.Stall[r])
			}
		}
		fmt.Println()
	}
}

// runSuite prints the classic litmus matrix: for each test and policy,
// how many of the seeds exhibited the SC-forbidden outcome.
func runSuite(seeds int) {
	if seeds <= 1 {
		seeds = 20
	}
	pols := []policy.Kind{policy.SC, policy.Unconstrained, policy.WODef1, policy.WODef2, policy.WODef2RO}
	fmt.Printf("%-8s", "test")
	for _, pol := range pols {
		fmt.Printf("  %-14s", pol)
	}
	fmt.Printf("  (forbidden/runs, %d seeds, network+caches)\n", seeds)
	for _, tc := range litmus.Classic() {
		fmt.Printf("%-8s", tc.Name)
		for _, pol := range pols {
			cfg := machine.Config{Policy: pol, Topology: machine.TopoNetwork, Caches: true, NetJitter: 20}
			rep, err := runner.RunOn(tc.Prog, cfg, runner.Config{Seeds: seeds, Forbidden: tc.Forbidden})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %-14s", fmt.Sprintf("%d/%d", rep.ForbiddenRuns, rep.Runs))
		}
		fmt.Println()
	}
	fmt.Println("\nSC never exhibits a forbidden outcome; the Co* rows are coherence-")
	fmt.Println("guaranteed on every machine; the rest are fair game for weak hardware")
	fmt.Println("because these programs race (DRF0 makes no promise about them).")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wosim:", err)
	os.Exit(1)
}

// fatalUsage reports a malformed flag value and exits 2 (usage error)
// rather than 1 (simulation failure).
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "wosim: usage:", err)
	os.Exit(2)
}
