// Command drfcheck decides whether a litmus program obeys DRF0
// (Definition 3) by exhaustively enumerating its executions on the
// idealized architecture, reporting every distinct race witness found.
//
// Usage:
//
//	drfcheck prog.litmus
//	drfcheck -model drf0+ro -all prog.litmus
//	echo '...' | drfcheck -
//
// Exit status: 0 when the program obeys the model, 1 when it races,
// 2 on errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"weakorder"
)

func main() {
	var (
		model = flag.String("model", "drf0", "synchronization model: drf0 or drf0+ro")
		all   = flag.Bool("all", false, "collect races from every racy execution (not just the first)")
		quiet = flag.Bool("q", false, "verdict only")
	)
	flag.Parse()

	src, err := readSource(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := weakorder.ParseProgram(src)
	if err != nil {
		fatal(err)
	}

	var mode weakorder.SyncMode
	switch *model {
	case "drf0":
		mode = weakorder.DRF0
	case "drf0+ro":
		mode = weakorder.DRF0RO
	default:
		fatal(fmt.Errorf("unknown model %q (want drf0 or drf0+ro)", *model))
	}

	v, err := check(prog, mode, *all)
	if err != nil {
		fatal(err)
	}
	if v.DRF {
		fmt.Printf("%s: obeys %s (%d idealized executions examined", prog.Name, *model, v.Executions)
		if v.Truncated > 0 {
			fmt.Printf(", %d spinning paths truncated", v.Truncated)
		}
		fmt.Println(")")
		return
	}
	fmt.Printf("%s: VIOLATES %s — %d race(s):\n", prog.Name, *model, len(v.Races))
	if !*quiet {
		for _, r := range v.Races {
			fmt.Printf("  %v\n", r)
		}
		if v.Witness != nil {
			fmt.Println("witness execution (augmented):")
			for _, op := range v.Witness.Ops {
				fmt.Printf("  %v\n", op)
			}
		}
	}
	os.Exit(1)
}

func check(prog *weakorder.Program, mode weakorder.SyncMode, all bool) (weakorder.Verdict, error) {
	if all {
		return weakorder.CheckModelAll(prog, mode)
	}
	return weakorder.CheckModel(prog, mode)
}

func readSource(path string) (string, error) {
	if path == "" {
		return "", fmt.Errorf("usage: drfcheck [flags] prog.litmus  (or - for stdin)")
	}
	var b []byte
	var err error
	if path == "-" {
		b, err = io.ReadAll(os.Stdin)
	} else {
		b, err = os.ReadFile(path)
	}
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drfcheck:", err)
	os.Exit(2)
}
