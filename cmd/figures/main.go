// Command figures regenerates every figure and table of the reproduction
// (see DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
// outputs).
//
// Usage:
//
//	figures            # everything
//	figures -fig 1     # just Figure 1
//	figures -table 3   # just Table 3
//	figures -quick     # reduced seed counts (fast smoke run)
package main

import (
	"flag"
	"fmt"
	"os"

	"weakorder/internal/exp"
)

func main() {
	var (
		fig   = flag.Int("fig", 0, "regenerate only this figure (1-3)")
		table = flag.Int("table", 0, "regenerate only this table (1-6)")
		quick = flag.Bool("quick", false, "reduced seed counts")
	)
	flag.Parse()

	seeds := 30
	t3seeds := 5
	t4progs, t4seeds := 5, 4
	if *quick {
		seeds, t3seeds, t4progs, t4seeds = 8, 2, 2, 2
	}

	want := func(isFig bool, n int) bool {
		if *fig == 0 && *table == 0 {
			return true
		}
		if isFig {
			return *fig == n
		}
		return *table == n
	}

	if want(true, 1) {
		_, t, err := exp.Figure1(seeds)
		exit(err)
		fmt.Println(t)
	}
	if want(true, 2) {
		_, t := exp.Figure2()
		fmt.Println(t)
	}
	if want(true, 3) {
		_, t, err := exp.Figure3(7)
		exit(err)
		fmt.Println(t)
		st, err := exp.Figure3Stalls(7)
		exit(err)
		fmt.Println(st)
		sizes := []int{16, 64, 256}
		if *quick {
			sizes = []int{8, 16}
		}
		_, sc, err := exp.Figure3Scaled(7, sizes)
		exit(err)
		fmt.Println(sc)
	}
	if want(false, 1) {
		_, t, err := exp.Table1(t3seeds)
		exit(err)
		fmt.Println(t)
	}
	if want(false, 2) {
		_, t, err := exp.Table2(2, t3seeds)
		exit(err)
		fmt.Println(t)
	}
	if want(false, 3) {
		_, t, err := exp.Table3(t3seeds)
		exit(err)
		fmt.Println(t)
	}
	if want(false, 4) {
		_, t, err := exp.Table4(t4progs, t4seeds)
		exit(err)
		fmt.Println(t)
	}
	if want(false, 5) {
		_, t, err := exp.Table5(t3seeds)
		exit(err)
		fmt.Println(t)
	}
	if want(false, 6) {
		_, t, err := exp.Table6(t3seeds * 3)
		exit(err)
		fmt.Println(t)
	}
}

func exit(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}
