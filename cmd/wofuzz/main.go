// Command wofuzz runs a differential model-checking campaign
// (internal/check): generated programs are simulated across a
// policy × topology × caches matrix and every outcome is adjudicated
// against the idealized-architecture SC oracles. The deterministic JSON
// summary goes to stdout; progress, throughput, and the coverage table
// go to stderr.
//
// Usage:
//
//	wofuzz -seed 1 -n 200 -policies all
//	wofuzz -seed 7 -n 50 -policies WO-Def2,SC -topos bus -corpus out/
//	wofuzz -seed 1 -n 2 -policies WO-Def2 -topos bus -fault WO-Def2 -corpus out/
//	wofuzz -seed 1 -n 200 -faults severe
//	wofuzz -axiom -n 100
//
// The same seed and flags always produce a byte-identical summary,
// regardless of -workers. The -fault flag deliberately corrupts one read
// per run on the named policy, exercising the violation pipeline
// (detection, shrinking, corpus emission) end to end. The -faults flag
// arms the deterministic interconnect fault injector (none, mild,
// severe) on every cached matrix row: the hardened protocol must still
// satisfy every oracle, and any watchdog death becomes a shrunk
// liveness reproducer. The -axiom flag switches to the oracle-vs-oracle
// differential: every litmus and generated program is checked between
// the declarative axiomatic engine (internal/axiom) and the operational
// oracles, with -n spread across the generator catalog.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"weakorder/internal/cache"
	"weakorder/internal/check"
	"weakorder/internal/faults"
	"weakorder/internal/machine"
	"weakorder/internal/metrics"
	"weakorder/internal/policy"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "campaign seed (derives every random stream)")
		n        = flag.Int("n", 100, "number of generated programs")
		policies = flag.String("policies", "all", "comma-separated policies, or all")
		topos    = flag.String("topos", "all", "comma-separated topologies (bus, network, mesh), or all")
		procs    = flag.Int("procs", 0, "pad every simulated machine to at least this many processors with idle procs (0 = just the program's threads)")
		dirmode  = flag.String("dirmode", "full", "directory sharer representation on cached rows: full, limited, or coarse")
		runs     = flag.Int("runs", 2, "machine seeds per (program, config) pair")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		corpus   = flag.String("corpus", "", "directory receiving .litmus+.json reproducers for violations")
		table    = flag.Bool("table", true, "print the coverage table to stderr")
		metricsF = flag.Bool("metrics", false, "print campaign metrics (Prometheus text) to stderr and emit periodic progress lines")
		fault    = flag.String("fault", "", "corrupt one read per run on this policy (violation-pipeline test)")
		faultsIn = flag.String("faults", "none", "interconnect fault plan: a preset (none, mild, severe) or drop=/dup=/delay=/maxdelay=/noretry spec")
		journal  = flag.String("journal", "", "append-only campaign journal: every completed program is checkpointed here")
		resume   = flag.Bool("resume", false, "resume from an existing -journal instead of starting over")
		deadline = flag.Duration("check-deadline", 0, "wall-clock budget per oracle decision (0 = unbounded; nonzero trades reproducibility for liveness)")
		satfast  = flag.String("satfast", "on", "polynomial appears-SC fast path: on or off (off forces enumeration for every query)")
		listen   = flag.String("listen", "", "serve the campaign control plane on this address (/metrics, /progress, /violations, /summary, /debug/pprof)")
		progIntv = flag.Duration("progress-interval", 0, "emit a progress line to stderr at most this often (0 = off)")
		progFmt  = flag.String("progress", "json", "format of -progress-interval lines: json (one object per line, the /progress payload) or text")
		axiomF   = flag.Bool("axiom", false, "run the axiomatic-vs-operational oracle differential instead of the simulation campaign")
		quiet    = flag.Bool("q", false, "suppress progress lines on stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (taken after the campaign) to this file")
	)
	flag.Parse()

	// The violation path exits non-zero via os.Exit, which skips defers,
	// so profile teardown is funneled through an explicit stop hook that
	// every exit path below runs first.
	stopProfiles := startProfiles(*cpuProf, *memProf)

	// SIGTERM/SIGINT end the process cleanly: profiles flush and the exit
	// status is zero. A campaign running with -journal has checkpointed
	// every completed program and resumes with -resume.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "wofuzz: %s: shutting down\n", s)
		atExit()
		os.Exit(0)
	}()

	if *axiomF {
		runAxiomDiff(*seed, *n, *metricsF, *quiet)
		stopProfiles()
		return
	}

	pols, err := parsePolicies(*policies)
	if err != nil {
		fatalUsage(err)
	}
	tps, err := parseTopos(*topos)
	if err != nil {
		fatalUsage(err)
	}
	if *resume && *journal == "" {
		fatalUsage(fmt.Errorf("-resume requires -journal"))
	}
	if *procs < 0 {
		fatalUsage(fmt.Errorf("-procs must be non-negative, got %d", *procs))
	}
	dm, err := cache.ParseDirMode(*dirmode)
	if err != nil {
		fatalUsage(err)
	}
	var noSatFast bool
	switch *satfast {
	case "on":
	case "off":
		noSatFast = true
	default:
		fatalUsage(fmt.Errorf("-satfast must be on or off, got %q", *satfast))
	}

	cfg := check.CampaignConfig{
		Seed:           *seed,
		Programs:       *n,
		Policies:       pols,
		Topologies:     tps,
		Procs:          *procs,
		DirMode:        dm,
		SeedsPerConfig: *runs,
		Workers:        *workers,
		CorpusDir:      *corpus,
		Journal:        *journal,
		Resume:         *resume,
		CheckDeadline:  *deadline,
		NoSatFast:      noSatFast,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "wofuzz: "+format+"\n", args...)
		}
	}
	if *metricsF {
		// Progress every ~5% of the campaign, at least every program.
		cfg.Progress = *n / 20
		if cfg.Progress < 1 {
			cfg.Progress = 1
		}
	}
	switch *progFmt {
	case "json":
		if *progIntv > 0 {
			cfg.ProgressJSON = os.Stderr
			cfg.ProgressEvery = *progIntv
		}
	case "text":
		// Timed human-readable lines ride the same interval machinery but
		// go through Logf (suppressed by -q, like every other text line).
		cfg.ProgressEvery = *progIntv
	default:
		fatalUsage(fmt.Errorf("-progress must be json or text, got %q", *progFmt))
	}
	if *listen != "" {
		cfg.Listen = *listen
		cfg.OnListen = func(addr string) {
			fmt.Fprintf(os.Stderr, "wofuzz: control plane listening on http://%s\n", addr)
		}
	}
	if *fault != "" {
		pol, err := policy.Parse(*fault)
		if err != nil {
			fatalUsage(err)
		}
		cfg.Fault = check.CorruptReadFault(pol)
	}
	plan, err := faults.Parse(*faultsIn)
	if err != nil {
		fatalUsage(err)
	}
	if plan.Enabled() {
		cfg.Faults = &plan
	}

	sum, err := check.Run(cfg)
	if err != nil {
		fatal(err)
	}

	b, err := sum.JSON()
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(b)

	if *table {
		fmt.Fprintln(os.Stderr)
		fmt.Fprintln(os.Stderr, sum.CoverageTable())
	}
	if *metricsF {
		fmt.Fprintln(os.Stderr)
		os.Stderr.Write(sum.Metrics().Prometheus())
	}
	if sum.Perf != nil && !*quiet {
		fmt.Fprintln(os.Stderr, "wofuzz:", sum.Perf)
	}
	if sum.WatchdogDeaths > 0 && !*quiet {
		fmt.Fprintf(os.Stderr, "wofuzz: %d watchdog death(s)\n", sum.WatchdogDeaths)
	}
	stopProfiles()
	if len(sum.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "wofuzz: %d contract violation(s) found\n", len(sum.Violations))
		os.Exit(1)
	}
}

// runAxiomDiff runs the axiomatic-vs-operational differential (see
// check.AxiomCampaign): the litmus suite plus n generated programs
// spread over the generator catalog, every one cross-checked between
// the declarative axiomatic engine and the operational oracles. Any
// disagreement exits non-zero — it is an engine bug, not a model
// difference.
func runAxiomDiff(seed int64, n int, wantMetrics, quiet bool) {
	cfg := check.AxiomCampaignConfig{Seed: seed, PerSpec: (n + 3) / 4}
	if !quiet {
		cfg.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "wofuzz: "+format+"\n", args...)
		}
	}
	var reg *metrics.Registry
	if wantMetrics {
		reg = metrics.NewRegistry()
		cfg.Metrics = reg
	}
	sum, err := check.AxiomCampaign(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("axiom differential: %d programs, %d compared, %d skipped (budget), %d disagreement(s)\n",
		sum.Programs, sum.Compared, sum.Skipped, len(sum.Disagreements))
	if reg != nil {
		fmt.Fprintln(os.Stderr)
		os.Stderr.Write(reg.Snapshot().Prometheus())
	}
	if len(sum.Disagreements) > 0 {
		for i := range sum.Disagreements {
			fmt.Fprintln(os.Stderr, "wofuzz:", sum.Disagreements[i].String())
		}
		atExit()
		os.Exit(1)
	}
}

// startProfiles arms the requested pprof outputs and returns the stop
// hook that flushes them. The hook is idempotent and also wired into
// fatal(), so profiles survive every exit path.
func startProfiles(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		cpuFile = f
	}
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wofuzz:", err)
				return
			}
			defer f.Close()
			runtime.GC() // fold transient garbage out of the heap picture
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "wofuzz:", err)
			}
		}
	}
	atExit = stop
	return stop
}

// atExit is run by fatal before exiting, so armed profiles still flush
// on error paths.
var atExit = func() {}

func parsePolicies(s string) ([]policy.Kind, error) {
	if s == "" || s == "all" {
		return policy.All(), nil
	}
	var out []policy.Kind
	for _, name := range strings.Split(s, ",") {
		pol, err := policy.Parse(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, pol)
	}
	return out, nil
}

func parseTopos(s string) ([]machine.Topology, error) {
	if s == "" || s == "all" {
		return []machine.Topology{machine.TopoBus, machine.TopoNetwork}, nil
	}
	var out []machine.Topology
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "bus":
			out = append(out, machine.TopoBus)
		case "network":
			out = append(out, machine.TopoNetwork)
		case "mesh":
			out = append(out, machine.TopoMesh)
		default:
			return nil, fmt.Errorf("unknown topology %q (want bus, network, or mesh)", name)
		}
	}
	return out, nil
}

func fatal(err error) {
	atExit()
	fmt.Fprintln(os.Stderr, "wofuzz:", err)
	os.Exit(1)
}

// fatalUsage reports a malformed flag value and exits 2 (usage error),
// distinguishing operator mistakes from campaign failures (exit 1) for
// scripts driving the fuzzer.
func fatalUsage(err error) {
	atExit()
	fmt.Fprintln(os.Stderr, "wofuzz: usage:", err)
	os.Exit(2)
}
