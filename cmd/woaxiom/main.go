// Command woaxiom evaluates litmus programs under declarative
// .cat-style axiomatic memory models (internal/axiom): candidate
// executions are constructed exhaustively and filtered through the
// model's relational axioms, printing every admitted outcome and any
// fired flag constraints (the drf0 model flags races).
//
// Usage:
//
//	woaxiom -model sc prog.litmus         # outcomes under a bundled model
//	woaxiom -model ./my.cat prog.litmus   # model from a .cat file
//	woaxiom -model drf0 -litmus mp-racy   # built-in litmus program by name
//	woaxiom -diff prog.litmus             # cross-check vs the operational oracles
//	woaxiom -list                         # bundled models and builtin programs
//
// Exit status: 0 when no flag fired (or the -diff comparison agrees),
// 1 when a flag fired or the differential disagrees, 2 on errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"weakorder"
	"weakorder/internal/litmus"
)

func main() {
	var (
		model      = flag.String("model", "sc", "bundled model name (sc, tso, ra, drf0) or path to a .cat file")
		litmusName = flag.String("litmus", "", "use the named built-in litmus program instead of a file")
		budget     = flag.Int("budget", 0, "per-thread memory-op budget (0 = engine default)")
		diff       = flag.Bool("diff", false, "cross-check axiomatic sc+drf0 against the operational oracles")
		list       = flag.Bool("list", false, "list bundled models and built-in litmus programs")
		quiet      = flag.Bool("q", false, "verdict only (suppress per-outcome lines)")
	)
	flag.Parse()

	if *list {
		fmt.Println("models:", strings.Join(weakorder.ModelNames(), " "))
		names := make([]string, 0, len(litmus.All()))
		for _, p := range litmus.All() {
			names = append(names, p.Name)
		}
		fmt.Println("litmus:", strings.Join(names, " "))
		return
	}

	prog, err := loadProgram(*litmusName, flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *diff {
		runDiff(prog, *budget, *quiet)
		return
	}

	m, err := loadModel(*model)
	if err != nil {
		fatal(err)
	}
	v, err := weakorder.AxiomCheck(prog, m, weakorder.AxiomConfig{MaxMemOpsPerThread: *budget})
	if err != nil {
		fatal(err)
	}
	st := v.Stats
	fmt.Printf("%s under %s: %d outcome(s), %d/%d candidates consistent (%d skeletons, %d pruned subtrees)\n",
		prog.Name, m.Name, len(v.Outcomes), st.Consistent, st.Candidates, st.Skeletons, st.Pruned)
	if !st.Complete {
		fmt.Println("WARNING: search incomplete (budget exceeded); outcome set may be partial")
	}
	if !*quiet {
		keys := make([]string, 0, len(v.Outcomes))
		for k := range v.Outcomes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Println("  ", k)
		}
	}
	fired := false
	flags := make([]string, 0, len(v.Flags))
	for name := range v.Flags {
		flags = append(flags, name)
	}
	sort.Strings(flags)
	for _, name := range flags {
		if n := v.Flags[name]; n > 0 {
			fired = true
			fmt.Printf("flag %s fired in %d candidate(s)\n", name, n)
		}
	}
	if fired {
		os.Exit(1)
	}
}

// runDiff cross-checks the axiomatic engine against the operational
// oracles (scmatch outcome sets, drf race classification) and exits
// non-zero on disagreement.
func runDiff(prog *weakorder.Program, budget int, quiet bool) {
	res, err := weakorder.AxiomDiff(prog, weakorder.AxiomDiffConfig{MemOpsPerThread: budget})
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.String())
	if !quiet && !res.SCAgree {
		for _, k := range res.AxiomOnly {
			fmt.Println("  axiomatic only:", k)
		}
		for _, k := range res.OperOnly {
			fmt.Println("  operational only:", k)
		}
	}
	if !res.Skipped && !res.Agree() {
		os.Exit(1)
	}
}

// loadModel resolves a bundled model name, or parses a .cat file when
// the argument looks like a path.
func loadModel(name string) (*weakorder.MemoryModel, error) {
	if strings.HasSuffix(name, ".cat") || strings.ContainsRune(name, os.PathSeparator) {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		base := strings.TrimSuffix(filepath.Base(name), ".cat")
		return weakorder.ParseModel(base, string(src))
	}
	return weakorder.LoadModel(name)
}

// loadProgram resolves -litmus by built-in name, else parses the litmus
// file argument ("-" for stdin).
func loadProgram(builtin, path string) (*weakorder.Program, error) {
	if builtin != "" {
		for _, p := range litmus.All() {
			if p.Name == builtin {
				return p, nil
			}
		}
		return nil, fmt.Errorf("unknown built-in litmus program %q (see -list)", builtin)
	}
	if path == "" {
		return nil, fmt.Errorf("usage: woaxiom [flags] prog.litmus  (or - for stdin, or -litmus NAME)")
	}
	var b []byte
	var err error
	if path == "-" {
		b, err = io.ReadAll(os.Stdin)
	} else {
		b, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return weakorder.ParseProgram(string(b))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "woaxiom:", err)
	os.Exit(2)
}
